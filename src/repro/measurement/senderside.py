"""Sender-side MTA-STS validation measurement (paper §6).

The paper leverages email-security-scans.org: participants send mail
to receiving domains whose MTA-STS/DANE configurations are
deliberately varied, and the platform infers from the observed
deliveries which validations each sender performs.

The reproduction stands up the same style of testbed inside the
simulated world:

* **receiver probes** — MTA-STS-enabled domains in enforce mode whose
  MX presents a certificate that fails PKIX but *matches* the DANE
  TLSA record, plus inverse combinations.  Which probes receive mail
  identifies the sender's validation behaviour;
* **a synthetic sender population** whose behaviour mix reproduces
  §6.2: 94.6% deliver over TLS, 93.2% purely opportunistic, 1.3%
  always require PKIX, 19.6% validate MTA-STS, 29.8% validate DANE,
  203 senders validate both, 62 of those (wrongly) prefer MTA-STS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clock import Instant
from repro.core.dane import DaneValidator
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.sender import MtaStsSender, SenderPolicyConfig
from repro.dns.name import DnsName
from repro.dns.records import TlsaRecord
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.world import World
from repro.smtp.delivery import DeliveryStatus, Message

#: §6.2 anchors.
SENDER_COUNT = 2_394
SHARE_TLS = 0.946
SHARE_PKIX_ALWAYS = 31 / SENDER_COUNT
SHARE_MTA_STS = 469 / SENDER_COUNT
SHARE_DANE = 714 / SENDER_COUNT
SHARE_BOTH = 203 / SENDER_COUNT
SHARE_BOTH_PREFER_STS = 62 / SENDER_COUNT

#: §6.1 dataset-shape anchors: 3,806 deliverability tests across the
#: 2,394 sender domains (Feb 2023 – Nov 2024); of 11,564 recorded MX
#: interactions, outlook.com contributed 26.31% of EHLO responses,
#: google.com 23.03%, and the top-10 operators 60.7% in total.
TEST_COUNT = 3_806
MX_INTERACTION_COUNT = 11_564
OPERATOR_WEIGHTS = {
    "outlook.com": 0.2631, "google.com": 0.2303, "yahoodns.net": 0.045,
    "icloud.com": 0.022, "gmx.net": 0.014, "mailbox.org": 0.010,
    "protonmail.ch": 0.009, "fastmail.com": 0.0075, "zoho.com": 0.0065,
    "mimecast.com": 0.0055,
}


@dataclass
class SenderProfile:
    """One sending domain's transport-security behaviour."""

    identity: str
    uses_tls: bool = True
    require_pkix: bool = False
    validates_mta_sts: bool = False
    validates_dane: bool = False
    prefers_sts_over_dane: bool = False


def synthesize_sender_population(count: int = SENDER_COUNT,
                                 seed: int = 20230201
                                 ) -> List[SenderProfile]:
    """A sender mix matching the §6.2 marginals."""
    rng = random.Random(seed)
    profiles = []
    for index in range(count):
        profile = SenderProfile(identity=f"sender{index:05d}.example")
        profile.uses_tls = rng.random() < SHARE_TLS
        if profile.uses_tls:
            both = rng.random() < SHARE_BOTH
            if both:
                profile.validates_mta_sts = True
                profile.validates_dane = True
                profile.prefers_sts_over_dane = (
                    rng.random() < SHARE_BOTH_PREFER_STS / SHARE_BOTH)
            else:
                profile.validates_mta_sts = (
                    rng.random() < (SHARE_MTA_STS - SHARE_BOTH)
                    / (1 - SHARE_BOTH))
                if not profile.validates_mta_sts:
                    profile.validates_dane = (
                        rng.random() < (SHARE_DANE - SHARE_BOTH)
                        / (1 - SHARE_BOTH - (SHARE_MTA_STS - SHARE_BOTH)))
            profile.require_pkix = rng.random() < SHARE_PKIX_ALWAYS
    # (require_pkix independent of STS/DANE, as observed)
        profiles.append(profile)
    return profiles


@dataclass
class DeliverabilityTest:
    """One recorded test on the platform (§6.1): a sender domain sent
    mail to the testbed at some time, through some MX operator."""

    sender_domain: str
    timestamp: Instant
    mx_operator: str


def synthesize_test_log(profiles: List[SenderProfile],
                        *, seed: int = 20230201,
                        total_tests: int = TEST_COUNT
                        ) -> List["DeliverabilityTest"]:
    """A test log with the §6.1 shape: every sender tests at least
    once, a long tail re-tests (3,806 tests over 2,394 senders), and
    the sending infrastructure concentrates on a few large operators
    (60.7% of interactions from the top 10)."""
    rng = random.Random(seed)
    start = Instant.from_date(2023, 2, 1)
    end = Instant.from_date(2024, 11, 1)
    span = end.epoch_seconds - start.epoch_seconds

    operators = list(OPERATOR_WEIGHTS)
    weights = list(OPERATOR_WEIGHTS.values())
    tail_share = 1.0 - sum(weights)

    def pick_operator(sender: SenderProfile) -> str:
        if rng.random() < tail_share:
            return f"mx.{sender.identity}"
        return rng.choices(operators, weights=weights, k=1)[0]

    log: List[DeliverabilityTest] = []
    for profile in profiles:
        log.append(DeliverabilityTest(
            profile.identity,
            Instant(start.epoch_seconds + rng.randrange(span)),
            pick_operator(profile)))
    extra = max(0, total_tests - len(profiles))
    for _ in range(extra):
        profile = rng.choice(profiles)
        log.append(DeliverabilityTest(
            profile.identity,
            Instant(start.epoch_seconds + rng.randrange(span)),
            pick_operator(profile)))
    log.sort(key=lambda t: t.timestamp)
    return log


def latest_test_per_sender(log: List["DeliverabilityTest"]
                           ) -> Dict[str, "DeliverabilityTest"]:
    """§6.1: "we consider the most recent test per sender domain"."""
    latest: Dict[str, DeliverabilityTest] = {}
    for test in log:
        current = latest.get(test.sender_domain)
        if current is None or test.timestamp > current.timestamp:
            latest[test.sender_domain] = test
    return latest


def operator_concentration(log: List["DeliverabilityTest"],
                           top: int = 10) -> dict:
    """The §6.1 limitation statistics: how much of the interaction
    volume the biggest sending operators account for."""
    from collections import Counter
    counts = Counter(test.mx_operator for test in log)
    total = sum(counts.values())
    top_operators = counts.most_common(top)
    return {
        "total_interactions": total,
        "top_operators": top_operators,
        "top_share": (sum(c for _, c in top_operators) / total
                      if total else 0.0),
    }


@dataclass
class ProbeOutcome:
    """Which of the testbed's receiving probes accepted a sender's mail."""

    sender: str
    delivered_to_sts_trap: bool = False      # enforce + bad PKIX cert
    delivered_to_dane_trap: bool = False     # TLSA mismatch
    delivered_to_pkix_trap: bool = False     # no policy, bad cert
    delivered_plaintext: bool = False
    delivered_to_conflict_probe_mechanism: str = ""

    def classify(self) -> dict:
        """Infer the sender's validation behaviour from deliveries.

        Refusing the sts-trap alone could mean "always requires PKIX";
        a true MTA-STS validator additionally *delivers* to the
        pkix-trap (bad cert but no policy).
        """
        pkix_always = not self.delivered_to_pkix_trap
        return {
            "validates_mta_sts": (not self.delivered_to_sts_trap
                                  and not pkix_always),
            "validates_dane": not self.delivered_to_dane_trap,
            "pkix_always": pkix_always,
            "tls_used": not self.delivered_plaintext,
        }


class SenderSideTestbed:
    """The receiving-side measurement platform."""

    def __init__(self, world: World, *, seed: int = 7):
        self._world = world
        self._rng = random.Random(seed)
        self._fetcher = PolicyFetcher(world.resolver, world.https_client)
        self._probes: Dict[str, str] = {}
        self._build_probes()

    # -- receiving probes ---------------------------------------------------

    def _build_probes(self) -> None:
        """Three receiving domains:

        * ``sts-trap``: enforce-mode MTA-STS whose only MX serves a
          self-signed certificate — compliant MTA-STS validators must
          refuse; everyone else delivers.
        * ``dane-trap``: DNSSEC-secure TLSA record that does NOT match
          the MX certificate (which is PKIX-valid) — DANE validators
          refuse; MTA-STS and opportunistic senders deliver.
        * ``conflict-probe``: both MTA-STS and DANE configured; the MX
          certificate is PKIX-valid but the TLSA record mismatches.
          Correct precedence (DANE first) refuses; the milter bug
          (MTA-STS preferred) delivers — §6.2's 62 senders.
        """
        from repro.ecosystem.misconfig import Fault, apply_fault

        sts_trap = deploy_domain(self._world, DomainSpec(
            domain="sts-trap.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400,
                          mx_patterns=("mail.sts-trap.com",))))
        apply_fault(self._world, sts_trap, Fault.MX_CERT_SELF_SIGNED,
                    mx_index=None)
        self._probes["sts-trap"] = "sts-trap.com"

        dane_trap = deploy_domain(self._world, DomainSpec(
            domain="dane-trap.com", deploy_sts=False))
        self._add_mismatched_tlsa(dane_trap)
        self._probes["dane-trap"] = "dane-trap.com"

        conflict = deploy_domain(self._world, DomainSpec(
            domain="conflict-probe.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400,
                          mx_patterns=("mail.conflict-probe.com",))))
        self._add_mismatched_tlsa(conflict)
        self._probes["conflict"] = "conflict-probe.com"

        # pkix-trap: no MTA-STS, no DANE, self-signed MX certificate.
        # Only the "always require PKIX" senders refuse here; this
        # separates them from MTA-STS validators on the sts-trap.
        pkix_trap = deploy_domain(self._world, DomainSpec(
            domain="pkix-trap.com", deploy_sts=False))
        apply_fault(self._world, pkix_trap, Fault.MX_CERT_SELF_SIGNED,
                    mx_index=None)
        self._probes["pkix-trap"] = "pkix-trap.com"

    def _add_mismatched_tlsa(self, deployed) -> None:
        """Publish a TLSA record that matches no presented key, under a
        DNSSEC-secure chain."""
        for host in deployed.mx_hosts:
            tlsa_name = DnsName.parse(f"_25._tcp.{host.hostname}")
            deployed.zone.add(TlsaRecord(
                tlsa_name, 3600, 3, 1, 1,
                association="0" * 56))
        self._world.dnssec.sign_zone(deployed.zone.apex.text,
                                     publish_ds=True)

    # -- running the campaign ----------------------------------------------------

    def make_sender(self, profile: SenderProfile) -> MtaStsSender:
        config = SenderPolicyConfig(
            validate_mta_sts=profile.validates_mta_sts,
            validate_dane=profile.validates_dane,
            prefer_mta_sts_over_dane=profile.prefers_sts_over_dane,
            require_pkix_always=profile.require_pkix)
        dane = DaneValidator(self._world.resolver, self._world.dnssec)
        sender = MtaStsSender(
            profile.identity, self._world.network, self._world.resolver,
            self._world.trust_store, self._world.clock, self._fetcher,
            config=config, dane=dane)
        sender._mta.opportunistic_tls = profile.uses_tls
        return sender

    def run_probe(self, profile: SenderProfile) -> ProbeOutcome:
        sender = self.make_sender(profile)
        outcome = ProbeOutcome(sender=profile.identity)

        sts = sender.send(Message(f"test@{profile.identity}",
                                  "probe@" + self._probes["sts-trap"]))
        outcome.delivered_to_sts_trap = sts.delivered
        outcome.delivered_plaintext = (
            sts.status is DeliveryStatus.DELIVERED_PLAINTEXT)

        dane = sender.send(Message(f"test@{profile.identity}",
                                   "probe@" + self._probes["dane-trap"]))
        outcome.delivered_to_dane_trap = dane.delivered

        pkix = sender.send(Message(f"test@{profile.identity}",
                                   "probe@" + self._probes["pkix-trap"]))
        outcome.delivered_to_pkix_trap = pkix.delivered

        conflict = sender.send(Message(f"test@{profile.identity}",
                                       "probe@" + self._probes["conflict"]))
        if conflict.delivered:
            outcome.delivered_to_conflict_probe_mechanism = \
                sender.last_mechanism
        return outcome

    def run_campaign(self, profiles: List[SenderProfile]) -> dict:
        """§6.2's aggregate table over the whole sender population."""
        outcomes = [self.run_probe(p) for p in profiles]
        inferred = [o.classify() for o in outcomes]
        total = len(profiles)
        tls = sum(1 for o, p in zip(outcomes, profiles) if p.uses_tls)
        sts_validators = sum(1 for i in inferred if i["validates_mta_sts"])
        dane_validators = sum(1 for i in inferred if i["validates_dane"])
        both = sum(1 for i in inferred
                   if i["validates_mta_sts"] and i["validates_dane"])
        # Senders that validate DANE (they refused the dane-trap) yet
        # delivered to the conflict probe via MTA-STS exhibit the
        # not-recommended MTA-STS-over-DANE preference.
        prefer_sts = sum(
            1 for o, i in zip(outcomes, inferred)
            if (o.delivered_to_conflict_probe_mechanism == "mta-sts"
                and i["validates_dane"]))
        pkix_always = sum(1 for i in inferred if i["pkix_always"])
        return {
            "senders": total,
            "tls": tls,
            "pkix_always": pkix_always,
            "mta_sts_validators": sts_validators,
            "dane_validators": dane_validators,
            "both_validators": both,
            "prefer_sts_over_dane": prefer_sts,
        }
