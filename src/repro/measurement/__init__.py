"""The measurement pipeline: scanning, classification, and analysis."""

from repro.measurement.snapshots import DomainSnapshot, SnapshotStore
from repro.measurement.scanner import Scanner
from repro.measurement.classify import EntityClassifier, EntityVerdict
from repro.measurement.taxonomy import categorize, snapshot_summary
from repro.measurement.inconsistency import classify_mismatch
from repro.measurement.historical import historical_match_rate
from repro.measurement.delegation import identify_provider, delegation_census
from repro.measurement.senderside import SenderSideTestbed, SenderProfile
from repro.measurement.notify import DisclosureCampaign
from repro.measurement.offline import OfflineAssessment, assess_zone
from repro.measurement.repair import RepairAction, apply_repairs, plan_repairs
from repro.measurement.zone_export import (
    audit_zone_corpus, export_world_zones, reimport_zones,
)

__all__ = [
    "OfflineAssessment", "assess_zone",
    "RepairAction", "apply_repairs", "plan_repairs",
    "audit_zone_corpus", "export_world_zones", "reimport_zones",
    "DomainSnapshot", "SnapshotStore", "Scanner",
    "EntityClassifier", "EntityVerdict",
    "categorize", "snapshot_summary",
    "classify_mismatch", "historical_match_rate",
    "identify_provider", "delegation_census",
    "SenderSideTestbed", "SenderProfile",
    "DisclosureCampaign",
]
