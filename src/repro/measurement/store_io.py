"""Durable campaign state: per-month JSONL shards plus a manifest.

The paper's platform scanned 87M domains monthly for years — a campaign
that long only survives process death if every finished month is
durable the moment it completes.  This module gives the
:class:`~repro.measurement.snapshots.SnapshotStore` an on-disk form:

``month-XXXX.jsonl``
    one shard per scan month, one canonical JSON row per domain
    snapshot in sorted domain order (exactly the rows
    ``canonical_bytes()`` would emit for that month);

``manifest.json``
    the commit record: schema version, the population config the
    campaign ran with, and per month the shard name, row count, the
    sha256 of the shard bytes, the scan date, and the month's
    serialised :class:`~repro.measurement.executor.ScanStats` and
    world-build churn.

Both artifacts are written through
:func:`repro.fsutil.atomic_write_text` (temp file + ``os.replace``),
and a month's shard is always written *before* the manifest that
records it — the manifest is the commit point, so a crash mid-commit
leaves the previous consistent state, never a manifest pointing at a
half-written shard.

Loading verifies everything it reads: a missing shard, a digest
mismatch, a truncated or unparsable row, a row count that disagrees
with the manifest, or an unsupported schema version raises
:class:`~repro.errors.StoreCorruption` naming the offending artifact.
There is no partial-load mode by design.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import StoreCorruption
from repro.fsutil import atomic_write_text, ensure_dir, read_text
from repro.measurement.snapshots import DomainSnapshot, SnapshotStore

__all__ = [
    "SCHEMA_VERSION", "MANIFEST_NAME", "StoreCorruption",
    "MonthEntry", "CampaignState",
    "shard_name", "month_shard_text", "shard_digest",
    "read_manifest", "commit_month", "save_store",
    "load_shard_rows", "load_state", "load_store",
]

#: Bump when the shard row layout or manifest structure changes in a
#: way old readers cannot interpret.  Loading refuses any other version
#: outright (see DESIGN.md §11 for the compatibility policy).
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"


@dataclass
class MonthEntry:
    """One committed month inside the manifest."""

    month: int
    date: str
    shard: str
    sha256: str
    rows: int
    stats: Dict[str, object] = field(default_factory=dict)
    build_stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"month": self.month, "date": self.date,
                "shard": self.shard, "sha256": self.sha256,
                "rows": self.rows, "stats": self.stats,
                "build_stats": self.build_stats}

    @classmethod
    def from_dict(cls, data: dict) -> "MonthEntry":
        try:
            return cls(month=int(data["month"]), date=str(data["date"]),
                       shard=str(data["shard"]), sha256=str(data["sha256"]),
                       rows=int(data["rows"]),
                       stats=dict(data.get("stats") or {}),
                       build_stats={k: int(v) for k, v in
                                    (data.get("build_stats") or {}).items()})
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruption(
                f"{MANIFEST_NAME}: malformed month entry "
                f"({data.get('month', '?')}): {exc}") from exc


@dataclass
class CampaignState:
    """A fully verified on-disk campaign: manifest plus loaded store."""

    state_dir: str
    schema_version: int
    population: Optional[dict]
    months: List[MonthEntry]
    store: SnapshotStore

    def entry(self, month: int) -> Optional[MonthEntry]:
        for candidate in self.months:
            if candidate.month == month:
                return candidate
        return None

    def month_indexes(self) -> List[int]:
        return sorted(entry.month for entry in self.months)


def shard_name(month: int) -> str:
    return f"month-{month:04d}.jsonl"


def month_shard_text(store: SnapshotStore, month: int) -> str:
    """The canonical shard body for one month: one compact JSON row per
    snapshot, sorted keys, sorted domain order, newline-terminated.

    Concatenating every month's parsed rows in month order reproduces
    ``json.loads(store.canonical_bytes())`` exactly — the round-trip
    the property tests assert.
    """
    lines = [json.dumps(snapshot.to_dict(), sort_keys=True,
                        separators=(",", ":"))
             for snapshot in store.month(month)]
    return "".join(line + "\n" for line in lines)


def shard_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

def _manifest_path(state_dir: str) -> str:
    return os.path.join(state_dir, MANIFEST_NAME)


def read_manifest(state_dir: str) -> Optional[dict]:
    """The raw manifest dict, or ``None`` when the directory holds no
    campaign state yet.  A present-but-damaged manifest raises
    :class:`StoreCorruption` — it is never treated as absent."""
    path = _manifest_path(state_dir)
    if not os.path.exists(path):
        return None
    try:
        manifest = json.loads(read_text(path))
    except (OSError, ValueError) as exc:
        raise StoreCorruption(f"{MANIFEST_NAME}: unreadable ({exc})") from exc
    if not isinstance(manifest, dict):
        raise StoreCorruption(f"{MANIFEST_NAME}: not a JSON object")
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise StoreCorruption(
            f"{MANIFEST_NAME}: schema version {version!r} is not the "
            f"supported version {SCHEMA_VERSION} — refusing to load")
    return manifest


def _write_manifest(state_dir: str, population: Optional[dict],
                    entries: Iterable[MonthEntry]) -> dict:
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "population": population,
        "months": [entry.to_dict()
                   for entry in sorted(entries, key=lambda e: e.month)],
    }
    atomic_write_text(_manifest_path(state_dir),
                      json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return manifest


def _month_date(store: SnapshotStore, month: int) -> str:
    snapshots = store.month(month)
    return snapshots[0].instant.date_string() if snapshots else ""


# ---------------------------------------------------------------------------
# Commit / save
# ---------------------------------------------------------------------------

def commit_month(state_dir: str, store: SnapshotStore, month: int, *,
                 date: Optional[str] = None,
                 stats: Optional[Dict[str, object]] = None,
                 build_stats: Optional[Dict[str, int]] = None,
                 population: Optional[dict] = None) -> MonthEntry:
    """Durably commit one finished month: shard first, manifest second.

    Re-committing an already recorded month replaces its entry (the
    shard write is idempotent for identical snapshots); every other
    committed month's entry is preserved.  The manifest write is the
    commit point — until it lands, a resume sees the previous state.
    """
    state_dir = ensure_dir(state_dir)
    manifest = read_manifest(state_dir)
    entries = ([MonthEntry.from_dict(e) for e in manifest.get("months", ())]
               if manifest else [])
    if population is None and manifest:
        population = manifest.get("population")

    text = month_shard_text(store, month)
    name = shard_name(month)
    atomic_write_text(os.path.join(state_dir, name), text)
    entry = MonthEntry(
        month=month,
        date=date if date is not None else _month_date(store, month),
        shard=name, sha256=shard_digest(text), rows=text.count("\n"),
        stats=dict(stats or {}), build_stats=dict(build_stats or {}))
    entries = [e for e in entries if e.month != month] + [entry]
    _write_manifest(state_dir, population, entries)
    return entry


def save_store(store: SnapshotStore, state_dir: str, *,
               population: Optional[dict] = None,
               stats_by_month: Optional[Dict[int, Dict[str, object]]] = None,
               build_stats_by_month: Optional[Dict[int, Dict[str, int]]] = None,
               ) -> List[MonthEntry]:
    """Persist every month of *store* into *state_dir* in one pass.

    Shards land first, then a single manifest naming all of them — the
    bulk analogue of :func:`commit_month` for exporting a finished
    in-memory campaign (``audit --save`` style use)."""
    state_dir = ensure_dir(state_dir)
    stats_by_month = stats_by_month or {}
    build_stats_by_month = build_stats_by_month or {}
    entries = []
    for month in store.months():
        text = month_shard_text(store, month)
        name = shard_name(month)
        atomic_write_text(os.path.join(state_dir, name), text)
        entries.append(MonthEntry(
            month=month, date=_month_date(store, month), shard=name,
            sha256=shard_digest(text), rows=text.count("\n"),
            stats=dict(stats_by_month.get(month, {})),
            build_stats=dict(build_stats_by_month.get(month, {}))))
    _write_manifest(state_dir, population, entries)
    return entries


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------

def load_shard_rows(state_dir: str, entry: MonthEntry) -> List[dict]:
    """The verified plain-data rows of one committed shard.

    Performs every integrity check :func:`load_state` applies —
    existence, content digest, per-row parseability, month ownership,
    row count — but stops at the JSON layer: callers that aggregate
    over raw fields (the columnar analysis path) get the dicts without
    paying for :class:`DomainSnapshot` construction.
    """
    path = os.path.join(state_dir, entry.shard)
    if not os.path.exists(path):
        raise StoreCorruption(
            f"shard {entry.shard}: recorded in the manifest but missing "
            f"from {state_dir}")
    try:
        text = read_text(path)
    except (OSError, UnicodeDecodeError) as exc:
        raise StoreCorruption(
            f"shard {entry.shard}: unreadable ({exc})") from exc
    digest = shard_digest(text)
    if digest != entry.sha256:
        raise StoreCorruption(
            f"shard {entry.shard}: content digest {digest[:12]}… does not "
            f"match the manifest's {entry.sha256[:12]}… — the shard was "
            f"corrupted or partially written")
    rows = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError as exc:
            raise StoreCorruption(
                f"shard {entry.shard}: row {number} is truncated or "
                f"unparsable ({exc})") from exc
        if not isinstance(row, dict) or "month_index" not in row:
            raise StoreCorruption(
                f"shard {entry.shard}: row {number} is truncated or "
                f"unparsable (not a snapshot row)")
        if row["month_index"] != entry.month:
            raise StoreCorruption(
                f"shard {entry.shard}: row {number} belongs to month "
                f"{row['month_index']}, not {entry.month}")
        rows.append(row)
    if len(rows) != entry.rows:
        raise StoreCorruption(
            f"shard {entry.shard}: {len(rows)} rows on disk, "
            f"manifest records {entry.rows} — truncated shard")
    return rows


def _load_shard(state_dir: str, entry: MonthEntry) -> List[DomainSnapshot]:
    snapshots = []
    for number, row in enumerate(load_shard_rows(state_dir, entry), start=1):
        try:
            snapshots.append(DomainSnapshot.from_dict(row))
        except (TypeError, ValueError, KeyError) as exc:
            raise StoreCorruption(
                f"shard {entry.shard}: row {number} is truncated or "
                f"unparsable ({exc})") from exc
    return snapshots


def load_state(state_dir: str,
               months: Optional[Iterable[int]] = None) -> CampaignState:
    """Load and fully verify a campaign state directory.

    *months* restricts loading to a subset of committed months (resume
    passes the campaign's requested month list); entries outside the
    subset stay on disk untouched.  Any integrity failure raises
    :class:`StoreCorruption`; there is no partial result.
    """
    state_dir = os.path.abspath(state_dir)
    manifest = read_manifest(state_dir)
    if manifest is None:
        raise StoreCorruption(
            f"{state_dir}: no {MANIFEST_NAME} — not a campaign state "
            f"directory")
    wanted = None if months is None else set(months)
    entries = [MonthEntry.from_dict(e) for e in manifest.get("months", ())]
    if wanted is not None:
        entries = [e for e in entries if e.month in wanted]
    entries.sort(key=lambda e: e.month)
    store = SnapshotStore()
    for entry in entries:
        for snapshot in _load_shard(state_dir, entry):
            store.add(snapshot)
    return CampaignState(
        state_dir=state_dir,
        schema_version=int(manifest["schema_version"]),
        population=manifest.get("population"),
        months=entries, store=store)


def load_store(state_dir: str) -> SnapshotStore:
    """Just the verified :class:`SnapshotStore` of a state directory."""
    return load_state(state_dir).store
