"""Disclosure-campaign simulation (paper §4.7).

The paper notified the ``postmaster@`` address of every misconfigured
domain in the latest snapshot: 20,144 emails, of which more than 5,000
bounced; after the campaign, 10% of the misconfigured domains had
their issues resolved (not necessarily causally).  The simulation
delivers notifications through the real simulated SMTP path — domains
whose MX setup is broken enough genuinely bounce — and applies a
remediation draw to the remainder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.ecosystem.world import World
from repro.measurement.snapshots import DomainSnapshot
from repro.smtp.delivery import DeliveryStatus, Message, SendingMta

#: §4.7 anchors.
BOUNCE_RATE_FLOOR = 5_000 / 20_144      # "more than 5,000 bounced"
REMEDIATION_RATE = 0.10
FEEDBACK_RESPONSES = 497
FEEDBACK_HELPFUL = 341
FEEDBACK_THANKS = 45


@dataclass
class NotificationResult:
    domain: str
    delivered: bool
    bounce_reason: str = ""
    remediated: bool = False


@dataclass
class CampaignReport:
    notified: int = 0
    bounced: int = 0
    delivered: int = 0
    remediated: int = 0
    results: List[NotificationResult] = field(default_factory=list)

    @property
    def bounce_rate(self) -> float:
        return self.bounced / self.notified if self.notified else 0.0

    @property
    def remediation_rate(self) -> float:
        return self.remediated / self.notified if self.notified else 0.0


class DisclosureCampaign:
    """Sends postmaster notifications to misconfigured domains."""

    def __init__(self, world: World, *, seed: int = 20241022,
                 extra_bounce_rate: float = 0.12):
        self._world = world
        self._rng = random.Random(seed)
        # Plenty of bounces in the wild come from full mailboxes, spam
        # filtering, and missing postmaster aliases that the transport
        # layer cannot see; they are modelled as an extra bounce draw.
        self._extra_bounce_rate = extra_bounce_rate
        self._mta = SendingMta(
            "notify.netsecurelab.org", world.network, world.resolver,
            world.trust_store, world.clock)

    def notify(self, snapshot: DomainSnapshot) -> NotificationResult:
        # The fallbacks chain *inside* the concatenation: a domain with
        # no syntax errors gets the fetch-stage (or generic) body, not
        # an empty suffix.
        message = Message(
            sender="research@netsecurelab.org",
            recipient=f"postmaster@{snapshot.domain}",
            body=("Your MTA-STS deployment appears misconfigured: "
                  + (", ".join(snapshot.policy_syntax_errors)
                     or snapshot.policy_fetch_stage or "see details")))
        attempt = self._mta.send(message)
        if not attempt.delivered:
            return NotificationResult(snapshot.domain, False,
                                      bounce_reason=attempt.status.value)
        if self._rng.random() < self._extra_bounce_rate:
            return NotificationResult(snapshot.domain, False,
                                      bounce_reason="mailbox-level bounce")
        return NotificationResult(snapshot.domain, True)

    def run(self, misconfigured: List[DomainSnapshot]) -> CampaignReport:
        report = CampaignReport(notified=len(misconfigured))
        for snapshot in misconfigured:
            self._tally(report, self.notify(snapshot))
        return report

    # -- TLSRPT-driven notifications ----------------------------------

    def notify_verdict(self, verdict) -> NotificationResult:
        """One notification triggered by received TLSRPT reports (a
        :class:`repro.obs.tlsrpt_monitor.TlsRptVerdict`) instead of an
        active rescan — the loop ROADMAP item 1 asks to close."""
        message = Message(
            sender="research@netsecurelab.org",
            recipient=f"postmaster@{verdict.policy_domain}",
            body=(f"TLSRPT reports show {verdict.failed_sessions} failed "
                  f"session(s) to your domain: "
                  f"{verdict.result_type.value}"))
        attempt = self._mta.send(message)
        if not attempt.delivered:
            return NotificationResult(verdict.policy_domain, False,
                                      bounce_reason=attempt.status.value)
        if self._rng.random() < self._extra_bounce_rate:
            return NotificationResult(verdict.policy_domain, False,
                                      bounce_reason="mailbox-level bounce")
        return NotificationResult(verdict.policy_domain, True)

    def run_from_verdicts(self, verdicts) -> CampaignReport:
        """Notify each domain named by a TLSRPT verdict feed (one mail
        per domain, covering its worst verdict)."""
        by_domain: Dict[str, object] = {}
        for verdict in verdicts:
            current = by_domain.get(verdict.policy_domain)
            if (current is None
                    or verdict.failed_sessions > current.failed_sessions):
                by_domain[verdict.policy_domain] = verdict
        report = CampaignReport(notified=len(by_domain))
        for domain in sorted(by_domain):
            self._tally(report, self.notify_verdict(by_domain[domain]))
        return report

    def _tally(self, report: CampaignReport,
               result: NotificationResult) -> None:
        if result.delivered:
            report.delivered += 1
            # Post-notification remediation (10% overall, §4.7) —
            # conditioned on the mail actually arriving.
            if self._rng.random() < REMEDIATION_RATE / (
                    1 - BOUNCE_RATE_FLOOR):
                result.remediated = True
                report.remediated += 1
        else:
            report.bounced += 1
        report.results.append(result)
