"""Zone-file export and DNS-only auditing.

The paper's raw inputs are TLD zone files; this module closes the loop
in the other direction: it exports a simulated world's authoritative
data back to RFC-1035 master files (the exact format
:func:`repro.dns.zone.parse_master_file` ingests) and runs the offline
assessment over an exported corpus.  This provides both a
serialisation path for sharing synthetic datasets and an end-to-end
consistency check: everything the simulation serves must survive a
round trip through its own parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dns.name import DnsName
from repro.dns.zone import Zone, parse_master_file, serialize_zone
from repro.ecosystem.world import World
from repro.measurement.offline import OfflineAssessment, assess_zone


def export_world_zones(world: World) -> Dict[str, str]:
    """Serialise every zone hosted in *world* to master-file text,
    keyed by apex name."""
    out: Dict[str, str] = {}
    for apex, server in sorted(world._domain_servers.items()):
        zone = server.zone_for(DnsName.parse(apex))
        if zone is not None and zone.record_count():
            out[apex] = serialize_zone(zone)
    return out


def reimport_zones(zone_texts: Dict[str, str]) -> Dict[str, Zone]:
    """Parse exported zone files back into :class:`Zone` objects."""
    return {apex: parse_master_file(text)
            for apex, text in zone_texts.items()}


@dataclass
class CorpusAuditResult:
    """DNS-only audit over an exported corpus."""

    assessed: int = 0
    with_record_errors: int = 0
    with_policy_host_errors: int = 0
    assessments: List[OfflineAssessment] = field(default_factory=list)


def audit_zone_corpus(zone_texts: Dict[str, str],
                      domains: Optional[List[str]] = None
                      ) -> CorpusAuditResult:
    """Run the offline (DNS-side) assessment across a zone corpus.

    *domains* defaults to every zone apex that carries an ``_mta-sts``
    TXT record — the corpus's MTA-STS population.
    """
    result = CorpusAuditResult()
    if domains is None:
        domains = [apex for apex, text in zone_texts.items()
                   if "_mta-sts" in text]
    for domain in domains:
        text = zone_texts.get(domain)
        if text is None:
            continue
        assessment = assess_zone(text, domain)
        result.assessed += 1
        result.assessments.append(assessment)
        if any(f.component == "record" for f in assessment.errors):
            result.with_record_errors += 1
        if any(f.component == "policy-host" for f in assessment.errors):
            result.with_policy_host_errors += 1
    return result
