"""The scan dataset schema.

A :class:`DomainSnapshot` is one domain's complete observation at one
scan instant — exactly the fields the paper's pipeline stores: the raw
TXT strings, MX/NS/A records, the policy host's CNAME and addresses,
the staged policy-fetch outcome, the parsed policy, and the per-MX
STARTTLS/certificate verdicts.  The :class:`SnapshotStore` indexes
snapshots by month and by domain, which is all the longitudinal
analyses (Figures 4-10) need.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.clock import Instant
from repro.errors import MisconfigCategory, PolicyFetchStage


@dataclass
class MxObservation:
    """One MX host's probe outcome inside a snapshot."""

    hostname: str
    addresses: List[str] = field(default_factory=list)
    reachable: bool = False
    starttls: bool = False
    tls_established: bool = False
    cert_valid: bool = False
    failure_class: str = ""       # valid | cn-mismatch | self-signed | ...
    transient: bool = False       # probe died on a retry-exhausted fault


@dataclass
class DomainSnapshot:
    """One domain, one scan month."""

    domain: str
    tld: str
    month_index: int
    instant: Instant

    # DNS stage
    txt_strings: List[str] = field(default_factory=list)
    sts_like: bool = False
    record_valid: bool = False
    record_error: str = ""
    record_id: str = ""
    ns_hostnames: List[str] = field(default_factory=list)
    apex_addresses: List[str] = field(default_factory=list)
    mx_hostnames: List[str] = field(default_factory=list)
    tlsrpt_present: bool = False
    #: A DNS-stage lookup (NS/A/MX or the ``_mta-sts`` TXT) failed on a
    #: retry-exhausted injected fault: the DNS view is incomplete noise.
    dns_transient: bool = False

    # policy host stage
    policy_host_cname: Optional[str] = None
    policy_host_addresses: List[str] = field(default_factory=list)
    policy_fetch_stage: Optional[str] = None   # failed stage, None = ok
    policy_transient: bool = False  # fetch died on a retry-exhausted fault
    policy_tls_failure: str = ""
    policy_http_status: Optional[int] = None
    policy_syntax_errors: List[str] = field(default_factory=list)
    #: Non-fatal policy deviations (e.g. max_age over the RFC bound).
    policy_warnings: List[str] = field(default_factory=list)
    policy_mode: str = ""
    policy_max_age: Optional[int] = None
    mx_patterns: List[str] = field(default_factory=list)

    # MX probing stage
    mx_observations: List[MxObservation] = field(default_factory=list)

    # -- derived ------------------------------------------------------------

    @property
    def policy_retrieval_ok(self) -> bool:
        return self.policy_fetch_stage is None and bool(self.mx_patterns)

    @property
    def policy_ok(self) -> bool:
        return (self.policy_fetch_stage is None
                and not self.policy_syntax_errors)

    @property
    def mx_tls_capable(self) -> List[MxObservation]:
        return [o for o in self.mx_observations if o.tls_established]

    @property
    def any_invalid_mx_cert(self) -> bool:
        return any(not o.cert_valid for o in self.mx_tls_capable)

    @property
    def all_invalid_mx_cert(self) -> bool:
        capable = self.mx_tls_capable
        return bool(capable) and all(not o.cert_valid for o in capable)

    @property
    def any_transient(self) -> bool:
        """Any stage died on a fault-injected error after retries.

        A transient snapshot's observations are network noise, not
        evidence: the taxonomy files the domain under ``transient``
        instead of attributing a misconfiguration category.
        """
        return (self.dns_transient or self.policy_transient
                or any(o.transient for o in self.mx_observations))

    @property
    def consistent(self) -> bool:
        """At least one actual MX matches the policy's mx patterns."""
        from repro.core.matching import policy_covers_mx
        if not self.policy_ok or not self.mx_hostnames or not self.mx_patterns:
            return True
        return any(policy_covers_mx(self.mx_patterns, mx)
                   for mx in self.mx_hostnames)

    @property
    def enforce_mode(self) -> bool:
        return self.policy_mode == "enforce"

    def to_dict(self) -> dict:
        """A plain-data view of every recorded field.

        ``Instant`` collapses to its epoch seconds, so the output is
        JSON-serialisable and two snapshots are equal exactly when the
        scanner recorded the same observations.
        """
        data = asdict(self)
        data["instant"] = self.instant.epoch_seconds
        return data


class SnapshotStore:
    """All snapshots of one measurement campaign."""

    def __init__(self):
        self._by_key: Dict[Tuple[int, str], DomainSnapshot] = {}
        self._months: set[int] = set()

    def add(self, snapshot: DomainSnapshot) -> None:
        self._by_key[(snapshot.month_index, snapshot.domain)] = snapshot
        self._months.add(snapshot.month_index)

    def merge(self, other: "SnapshotStore") -> None:
        """Fold *other*'s snapshots in, in canonical (month, domain)
        order.  The scan executor merges per-shard stores through this,
        so a parallel scan assembles the same store a serial one does.
        """
        for key in sorted(other._by_key):
            self.add(other._by_key[key])

    def months(self) -> List[int]:
        return sorted(self._months)

    def month(self, month_index: int) -> List[DomainSnapshot]:
        return [snap for (m, _), snap in sorted(self._by_key.items())
                if m == month_index]

    def get(self, month_index: int, domain: str) -> Optional[DomainSnapshot]:
        return self._by_key.get((month_index, domain))

    def domain_history(self, domain: str) -> List[DomainSnapshot]:
        return [snap for (m, d), snap in sorted(self._by_key.items())
                if d == domain]

    def latest_month(self) -> int:
        if not self._months:
            raise ValueError("store is empty")
        return max(self._months)

    def latest(self) -> List[DomainSnapshot]:
        return self.month(self.latest_month())

    def __len__(self) -> int:
        return len(self._by_key)

    def canonical_bytes(self) -> bytes:
        """A deterministic byte serialisation of the whole store.

        Snapshots are emitted in sorted (month, domain) order with
        sorted JSON keys, so two stores serialise identically iff they
        hold the same observations — the determinism tests compare
        serial and threaded scan outputs byte-for-byte through this.
        """
        rows = [self._by_key[key].to_dict() for key in sorted(self._by_key)]
        return json.dumps(rows, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
