"""The scan dataset schema.

A :class:`DomainSnapshot` is one domain's complete observation at one
scan instant — exactly the fields the paper's pipeline stores: the raw
TXT strings, MX/NS/A records, the policy host's CNAME and addresses,
the staged policy-fetch outcome, the parsed policy, and the per-MX
STARTTLS/certificate verdicts.  The :class:`SnapshotStore` indexes
snapshots by month and by domain, which is all the longitudinal
analyses (Figures 4-10) need.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.clock import Instant
from repro.errors import MisconfigCategory, PolicyFetchStage


@dataclass
class MxObservation:
    """One MX host's probe outcome inside a snapshot."""

    hostname: str
    addresses: List[str] = field(default_factory=list)
    reachable: bool = False
    starttls: bool = False
    tls_established: bool = False
    cert_valid: bool = False
    failure_class: str = ""       # valid | cn-mismatch | self-signed | ...
    transient: bool = False       # probe died on a retry-exhausted fault

    @classmethod
    def from_dict(cls, data: dict) -> "MxObservation":
        """Exact inverse of ``asdict``: unknown keys raise ``TypeError``
        so a schema drift surfaces instead of silently dropping data."""
        return cls(**data)


@dataclass
class DomainSnapshot:
    """One domain, one scan month."""

    domain: str
    tld: str
    month_index: int
    instant: Instant

    # DNS stage
    txt_strings: List[str] = field(default_factory=list)
    sts_like: bool = False
    record_valid: bool = False
    record_error: str = ""
    record_id: str = ""
    ns_hostnames: List[str] = field(default_factory=list)
    apex_addresses: List[str] = field(default_factory=list)
    mx_hostnames: List[str] = field(default_factory=list)
    tlsrpt_present: bool = False
    #: A DNS-stage lookup (NS/A/MX or the ``_mta-sts`` TXT) failed on a
    #: retry-exhausted injected fault: the DNS view is incomplete noise.
    dns_transient: bool = False

    # policy host stage
    policy_host_cname: Optional[str] = None
    policy_host_addresses: List[str] = field(default_factory=list)
    policy_fetch_stage: Optional[str] = None   # failed stage, None = ok
    policy_transient: bool = False  # fetch died on a retry-exhausted fault
    policy_tls_failure: str = ""
    policy_http_status: Optional[int] = None
    policy_syntax_errors: List[str] = field(default_factory=list)
    #: Non-fatal policy deviations (e.g. max_age over the RFC bound).
    policy_warnings: List[str] = field(default_factory=list)
    policy_mode: str = ""
    policy_max_age: Optional[int] = None
    mx_patterns: List[str] = field(default_factory=list)

    # MX probing stage
    mx_observations: List[MxObservation] = field(default_factory=list)

    # -- derived ------------------------------------------------------------

    @property
    def policy_retrieval_ok(self) -> bool:
        return self.policy_fetch_stage is None and bool(self.mx_patterns)

    @property
    def policy_ok(self) -> bool:
        return (self.policy_fetch_stage is None
                and not self.policy_syntax_errors)

    @property
    def mx_tls_capable(self) -> List[MxObservation]:
        return [o for o in self.mx_observations if o.tls_established]

    @property
    def any_invalid_mx_cert(self) -> bool:
        return any(not o.cert_valid for o in self.mx_tls_capable)

    @property
    def all_invalid_mx_cert(self) -> bool:
        capable = self.mx_tls_capable
        return bool(capable) and all(not o.cert_valid for o in capable)

    @property
    def any_transient(self) -> bool:
        """Any stage died on a fault-injected error after retries.

        A transient snapshot's observations are network noise, not
        evidence: the taxonomy files the domain under ``transient``
        instead of attributing a misconfiguration category.
        """
        return (self.dns_transient or self.policy_transient
                or any(o.transient for o in self.mx_observations))

    @property
    def consistent(self) -> bool:
        """At least one actual MX matches the policy's mx patterns."""
        from repro.core.matching import policy_covers_mx
        if not self.policy_ok or not self.mx_hostnames or not self.mx_patterns:
            return True
        return any(policy_covers_mx(self.mx_patterns, mx)
                   for mx in self.mx_hostnames)

    @property
    def enforce_mode(self) -> bool:
        return self.policy_mode == "enforce"

    def to_dict(self) -> dict:
        """A plain-data view of every recorded field.

        ``Instant`` collapses to its epoch seconds, so the output is
        JSON-serialisable and two snapshots are equal exactly when the
        scanner recorded the same observations.  Built by hand rather
        than ``dataclasses.asdict`` — the recursive deep-copy there
        dominates shard-commit and ``canonical_bytes`` cost; list
        fields are still copied so callers can mutate the result.
        """
        data = dict(self.__dict__)
        data["instant"] = self.instant.epoch_seconds
        for key in ("txt_strings", "ns_hostnames", "apex_addresses",
                    "mx_hostnames", "policy_host_addresses",
                    "policy_syntax_errors", "policy_warnings",
                    "mx_patterns"):
            data[key] = list(data[key])
        data["mx_observations"] = [
            {**obs.__dict__, "addresses": list(obs.addresses)}
            for obs in self.mx_observations]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DomainSnapshot":
        """Exact inverse of :meth:`to_dict`.

        ``instant`` rehydrates from its epoch seconds and every MX
        observation from its own dict; every other field is taken
        verbatim, so ``from_dict(s.to_dict()) == s`` for any snapshot
        the scanner can produce.  Unknown or missing keys raise
        ``TypeError`` — persistence callers turn that into an explicit
        corruption error rather than loading a partial snapshot.
        """
        data = dict(data)
        data["instant"] = Instant(int(data["instant"]))
        data["mx_observations"] = [
            MxObservation.from_dict(obs) for obs in data["mx_observations"]]
        return cls(**data)


class SnapshotStore:
    """All snapshots of one measurement campaign.

    Snapshots are indexed by month *and* by domain as they arrive, so
    :meth:`month` and :meth:`domain_history` — called per month by
    every figure series — cost O(that month / that domain's history),
    not O(whole store).
    """

    def __init__(self):
        #: month_index -> {domain -> snapshot}
        self._by_month: Dict[int, Dict[str, DomainSnapshot]] = {}
        #: domain -> {month_index -> snapshot}
        self._by_domain: Dict[str, Dict[int, DomainSnapshot]] = {}
        self._count = 0

    def add(self, snapshot: DomainSnapshot) -> None:
        month = self._by_month.setdefault(snapshot.month_index, {})
        if snapshot.domain not in month:
            self._count += 1
        month[snapshot.domain] = snapshot
        self._by_domain.setdefault(
            snapshot.domain, {})[snapshot.month_index] = snapshot

    def merge(self, other: "SnapshotStore") -> None:
        """Fold *other*'s snapshots in, in canonical (month, domain)
        order.  The scan executor merges per-shard stores through this,
        and the resume path re-merges checkpointed months, so key
        collisions are never legitimate unless the snapshots are equal
        (an idempotent re-merge): a colliding key whose incoming
        snapshot *differs* raises ``ValueError`` naming the key instead
        of silently overwriting either side.
        """
        for month_index in other.months():
            for snapshot in other.month(month_index):
                existing = self.get(month_index, snapshot.domain)
                if existing is None:
                    self.add(snapshot)
                elif existing != snapshot:
                    raise ValueError(
                        f"snapshot merge collision at (month={month_index}, "
                        f"domain={snapshot.domain!r}): incoming snapshot "
                        f"differs from the stored one")

    def months(self) -> List[int]:
        return sorted(self._by_month)

    def month(self, month_index: int) -> List[DomainSnapshot]:
        by_domain = self._by_month.get(month_index, {})
        return [by_domain[domain] for domain in sorted(by_domain)]

    def get(self, month_index: int, domain: str) -> Optional[DomainSnapshot]:
        return self._by_month.get(month_index, {}).get(domain)

    def domain_history(self, domain: str) -> List[DomainSnapshot]:
        by_month = self._by_domain.get(domain, {})
        return [by_month[month] for month in sorted(by_month)]

    def latest_month(self) -> int:
        if not self._by_month:
            raise ValueError("store is empty")
        return max(self._by_month)

    def latest(self) -> List[DomainSnapshot]:
        return self.month(self.latest_month())

    def __len__(self) -> int:
        return self._count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SnapshotStore):
            return NotImplemented
        return self._by_month == other._by_month

    def canonical_bytes(self) -> bytes:
        """A deterministic byte serialisation of the whole store.

        Snapshots are emitted in sorted (month, domain) order with
        sorted JSON keys, so two stores serialise identically iff they
        hold the same observations — the determinism tests compare
        serial and threaded scan outputs byte-for-byte through this,
        and the resume differentials compare interrupted-and-resumed
        campaigns against uninterrupted ones.
        """
        rows = [snapshot.to_dict() for snapshot in self.iter_snapshots()]
        return json.dumps(rows, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def iter_snapshots(self) -> Iterable[DomainSnapshot]:
        """Every snapshot in canonical (month, domain) order."""
        for month_index in self.months():
            yield from self.month(month_index)

    @classmethod
    def from_rows(cls, rows: Iterable[dict]) -> "SnapshotStore":
        """Rebuild a store from plain-data rows — the exact inverse of
        ``json.loads(store.canonical_bytes())``."""
        store = cls()
        for row in rows:
            store.add(DomainSnapshot.from_dict(row))
        return store
