"""The scan pipeline (paper §4.1).

Given a live world (usually a materialised timeline snapshot), the
:class:`Scanner` performs, for every target domain, the same steps the
paper's monthly component scans performed:

1. DNS scan: ``_mta-sts`` TXT, MX, NS, apex A, policy-host CNAME/A,
   ``_smtp._tls`` TXT;
2. policy retrieval over HTTPS with staged error classification;
3. the instrumented SMTP probe of every MX host.

The output is a :class:`~repro.measurement.snapshots.DomainSnapshot`
per domain, appended to a :class:`SnapshotStore`.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

from repro import trace
from repro.clock import Instant
from repro.core.fetch import PolicyFetcher
from repro.core.tlsrpt import lookup_tlsrpt
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import RRType
from repro.dns.resolver import Resolver
from repro.ecosystem.world import World
from repro.measurement.snapshots import (
    DomainSnapshot, MxObservation, SnapshotStore,
)
from repro.measurement.taxonomy import primary_bucket
from repro.obs.profile import StageProfiler
from repro.smtp.client import SmtpProbe


class Scanner:
    """Scans domains in one world into snapshot records."""

    def __init__(self, world: World,
                 tracer: Optional[trace.Tracer] = None,
                 profiler: Optional[StageProfiler] = None):
        self._world = world
        self._resolver: Resolver = world.resolver
        self._fetcher = PolicyFetcher(world.resolver, world.https_client)
        self._probe: SmtpProbe = world.smtp_probe
        #: When set, every scanned domain records a span tree on this
        #: tracer (bound thread-locally for the duration of the scan so
        #: the resolver / HTTPS / SMTP clients report into it).
        self._tracer = tracer
        #: When set, every stage records its *wall-clock* seconds here
        #: (never mixed into the deterministic trace metrics).
        self._profiler = profiler
        #: Domains whose snapshot carried any transient marker —
        #: retry-exhausted injected faults (ScanStats accounting).
        self.transient_domains = 0

    @property
    def policy_fetches(self) -> int:
        """Policy discovery pipelines this scanner has run (ScanStats)."""
        return self._fetcher.fetch_count

    @property
    def tracer(self) -> Optional[trace.Tracer]:
        return self._tracer

    @property
    def profiler(self) -> Optional[StageProfiler]:
        return self._profiler

    def scan_domain(self, domain: str, month_index: int,
                    instant: Optional[Instant] = None) -> DomainSnapshot:
        domain = canonical_host(domain)
        snapshot = DomainSnapshot(
            domain=domain, tld=domain.rsplit(".", 1)[-1],
            month_index=month_index,
            instant=instant or self._world.now())

        if self._tracer is None:
            self._scan_stages(snapshot)
        else:
            with trace.bind(self._tracer), self._tracer.domain_span(
                    domain, month_index,
                    snapshot.instant.epoch_seconds) as span:
                self._scan_stages(snapshot)
                span.event("verdict", bucket=primary_bucket(snapshot),
                           transient=snapshot.any_transient)
                self._tracer.metrics.count("scan.domains")
                if snapshot.any_transient:
                    self._tracer.metrics.count("scan.transient_domains")
        if snapshot.any_transient:
            self.transient_domains += 1
        return snapshot

    def _scan_stages(self, snapshot: DomainSnapshot) -> None:
        profiler = self._profiler
        if profiler is None:
            self._scan_dns(snapshot)
            self._scan_policy(snapshot)
            self._scan_mx(snapshot)
            return
        started = time.perf_counter()
        for stage, scan in (("dns", self._scan_dns),
                            ("policy", self._scan_policy),
                            ("mx", self._scan_mx)):
            stage_started = time.perf_counter()
            scan(snapshot)
            profiler.record_stage(
                stage, time.perf_counter() - stage_started)
        profiler.record_domain(snapshot.domain, snapshot.month_index,
                               time.perf_counter() - started)

    def scan_all(self, domains: Iterable[str], month_index: int,
                 store: Optional[SnapshotStore] = None,
                 instant: Optional[Instant] = None,
                 on_domain: Optional[Callable[[str], None]] = None,
                 ) -> SnapshotStore:
        """Scan every domain into *store* at one shared *instant*.

        The instant is resolved once and threaded through to every
        :meth:`scan_domain` call, so all snapshots of one scan month
        carry the same timestamp even if the world clock moves while
        the scan is in flight.  *on_domain* is the progress hook: it is
        called with each domain after its snapshot lands in the store.
        """
        store = store if store is not None else SnapshotStore()
        instant = instant if instant is not None else self._world.now()
        for domain in domains:
            store.add(self.scan_domain(domain, month_index, instant))
            if on_domain is not None:
                on_domain(domain)
        return store

    # -- stages -------------------------------------------------------------

    def _scan_dns(self, snapshot: DomainSnapshot) -> None:
        domain = snapshot.domain
        with trace.child_span("dns", domain):
            ns, error = self._resolver.resolve_detailed(domain, RRType.NS)
            self._note_transient(snapshot, error)
            if ns is not None:
                snapshot.ns_hostnames = sorted(
                    r.nsdname.text for r in ns.records)   # type: ignore[attr-defined]
            if trace.TRACING:
                trace.event("lookup", rrtype="NS",
                            outcome=self._lookup_outcome(ns, error))
            apex_a, error = self._resolver.resolve_detailed(
                domain, RRType.A)
            self._note_transient(snapshot, error)
            if apex_a is not None:
                snapshot.apex_addresses = sorted(
                    r.address.text for r in apex_a.records)  # type: ignore[attr-defined]
            if trace.TRACING:
                trace.event("lookup", rrtype="A",
                            outcome=self._lookup_outcome(apex_a, error))
            mx, error = self._resolver.resolve_detailed(domain, RRType.MX)
            self._note_transient(snapshot, error)
            if mx is not None:
                records = sorted(
                    mx.records,
                    key=lambda r: (r.preference, r.exchange.text))  # type: ignore[attr-defined]
                snapshot.mx_hostnames = [r.exchange.text for r in records]  # type: ignore[attr-defined]
            if trace.TRACING:
                trace.event("lookup", rrtype="MX",
                            outcome=self._lookup_outcome(mx, error))
            snapshot.tlsrpt_present = (
                lookup_tlsrpt(self._resolver, domain) is not None)
            if trace.TRACING:
                trace.event("tlsrpt", present=snapshot.tlsrpt_present)

    @staticmethod
    def _lookup_outcome(answer, error) -> str:
        if answer is not None:
            return f"ok:{len(answer.records)}"
        if error is not None:
            return type(error).__name__
        return "no-answer"

    @staticmethod
    def _note_transient(snapshot: DomainSnapshot, error) -> None:
        if error is not None and getattr(error, "transient", False):
            snapshot.dns_transient = True

    def _scan_policy(self, snapshot: DomainSnapshot) -> None:
        with trace.child_span("policy", snapshot.domain):
            result = self._fetcher.fetch_policy(snapshot.domain)
            snapshot.txt_strings = result.txt_strings
            snapshot.sts_like = result.sts_enabled
            snapshot.policy_transient = result.transient
            snapshot.record_valid = result.record is not None
            if result.record is not None:
                snapshot.record_id = result.record.id
            if result.record_error is not None:
                snapshot.record_error = result.record_error.value
            if not result.sts_enabled:
                return

            snapshot.policy_host_cname = result.policy_host_cname
            if result.fetch is not None:
                snapshot.policy_host_addresses = [
                    ip.text for ip in result.fetch.resolved_ips]
                snapshot.policy_http_status = result.fetch.status
                if result.fetch.tls_failure is not None:
                    snapshot.policy_tls_failure = (
                        result.fetch.tls_failure.value)
            stage = result.failed_stage
            snapshot.policy_fetch_stage = stage.value if stage else None
            if result.policy_check is not None:
                snapshot.policy_syntax_errors = [
                    e.value for e in result.policy_check.errors]
                snapshot.policy_warnings = [
                    w.value for w in result.policy_check.warnings]
            if result.policy is not None:
                snapshot.policy_mode = result.policy.mode.value
                snapshot.policy_max_age = result.policy.max_age
                snapshot.mx_patterns = list(result.policy.mx_patterns)
            if trace.TRACING:
                trace.event(
                    "policy-result",
                    stage=snapshot.policy_fetch_stage or "ok",
                    mode=snapshot.policy_mode or "",
                    syntax_errors=list(snapshot.policy_syntax_errors),
                    warnings=list(snapshot.policy_warnings))

    def _scan_mx(self, snapshot: DomainSnapshot) -> None:
        with trace.child_span("mx", snapshot.domain):
            for hostname in snapshot.mx_hostnames:
                observation = MxObservation(hostname=hostname)
                answer, error = self._resolver.resolve_detailed(
                    hostname, RRType.A)
                if answer is not None:
                    observation.addresses = sorted(
                        r.address.text for r in answer.records)  # type: ignore[attr-defined]
                elif (error is not None
                      and getattr(error, "transient", False)):
                    observation.transient = True
                probe = self._probe.probe_host(hostname)
                observation.reachable = probe.reachable
                observation.starttls = probe.starttls_offered
                observation.tls_established = probe.tls_established
                observation.cert_valid = probe.cert_valid
                observation.failure_class = probe.failure_class()
                observation.transient = (observation.transient
                                         or probe.transient)
                snapshot.mx_observations.append(observation)
                if trace.TRACING:
                    trace.event("mx-host", host=observation.hostname,
                                verdict=observation.failure_class,
                                transient=observation.transient,
                                ref=f"probe:{canonical_host(hostname)}")
