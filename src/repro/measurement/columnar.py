"""Columnar analysis over stored campaign shards (ROADMAP item 2).

At paper scale the longitudinal analyses (Figures 4-10, the taxonomy
census, Table 2) iterate tens of millions of per-domain objects per
month; constructing a :class:`~repro.measurement.snapshots.DomainSnapshot`
(plus its :class:`MxObservation` children) per row and re-deriving the
same classifications per figure is the bottleneck after the scan
itself.  Large-scale ecosystem measurements (Czybik et al., Mayer et
al.) stay tractable by aggregating over columnar/census
representations instead of per-host records — this module does the
same for the stored shard format:

* :class:`ColumnarStore` loads each committed month lazily, keyed off
  the ``store_io`` manifest, parsing shard rows straight into
  per-field stdlib ``array``/``bytearray``/list columns without ever
  constructing a snapshot object.  ``from_store`` converts an
  in-memory :class:`SnapshotStore` through the same builder.
* Strings are dictionary-encoded: domains, policy modes, fetch
  stages, providers, and whole mx-pattern/MX-host tuples intern into
  store-level dictionaries, so every derived classification
  (``policy_covers_mx``, ``classify_mismatch``, eSLD extraction) is
  computed once per *distinct* value and memoised, not once per row.
* Every hot aggregation — ``snapshot_summary``, ``mismatch_census``,
  ``delegation_census``, the taxonomy-bucket census behind the
  :class:`~repro.obs.monitor.CampaignMonitor` feed, and the Figure-9
  historical matcher — has a ``*_view`` port here that runs over one
  :class:`MonthView` of columns.

The ports are gated on byte-identity: every figure series, census,
metrics JSONL line, and health report must be byte-for-byte equal
between the object path and the columnar path, clean and
fault-seeded, on every scan backend (``tests/test_columnar.py`` and
the ``columnar-identity`` CI job enforce this).  To keep that
guarantee the per-row derivations below call the *same* pure
functions the object path calls (``policy_covers_mx``,
``classify_mismatch``, ``_esld``), only memoised behind the
dictionary encoding, and every Counter is built in the same insertion
order so ``most_common`` tie-breaks agree.
"""

from __future__ import annotations

import os
from array import array
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.matching import policy_covers_mx
from repro.dns.name import DnsName, effective_sld, registrable_part
from repro.errors import (
    MisconfigCategory, MismatchClass, PolicyFetchStage, PolicyWarning,
    StoreCorruption,
)
from repro.measurement.classify import SELF_MAX, THIRD_PARTY_MIN, _esld
from repro.measurement.inconsistency import classify_mismatch
from repro.measurement.taxonomy import PRIMARY_BUCKETS, SnapshotSummary

if TYPE_CHECKING:
    from repro.measurement.snapshots import SnapshotStore
    from repro.measurement.store_io import MonthEntry

__all__ = [
    "ColumnarStore", "MonthView",
    "snapshot_summary_view", "taxonomy_census_view",
    "mismatch_census_view", "delegation_census_view",
    "historical_series_view",
]

# -- fixed encodings --------------------------------------------------------
#
# The category bits follow categorize()'s append order so iterating set
# bits reproduces the object path's Counter insertion order exactly.

_CATEGORY_ORDER = (MisconfigCategory.DNS_RECORD,
                   MisconfigCategory.POLICY_RETRIEVAL,
                   MisconfigCategory.MX_CERTIFICATE,
                   MisconfigCategory.INCONSISTENCY)
_CATEGORY_BIT = {category: 1 << index
                 for index, category in enumerate(_CATEGORY_ORDER)}
_TRANSIENT_BIT = 1 << len(_CATEGORY_ORDER)

_BUCKET_CODE = {bucket: index for index, bucket in enumerate(PRIMARY_BUCKETS)}
_B_TRANSIENT = _BUCKET_CODE["transient"]
_B_NOT_STS = _BUCKET_CODE["not-sts"]
_B_OK = _BUCKET_CODE["ok"]

#: Entity verdicts, encoded as indexes into the summary key strings.
ENTITY_KEYS = ("self-managed", "third-party", "unclassified")
_E_SELF, _E_THIRD, _E_UNCLASSIFIED = 0, 1, 2

#: Mismatch classes, 1-based; 0 means "no mismatch".
_MISMATCH_CLASSES = tuple(MismatchClass)
_MISMATCH_CODE = {cls: index + 1
                  for index, cls in enumerate(_MISMATCH_CLASSES)}
_DOMAIN_MISMATCH_CODE = _MISMATCH_CODE[MismatchClass.DOMAIN]


@dataclass
class MonthView:
    """One month's cross-section as parallel per-field columns.

    Row order is the shard's canonical sorted-domain order, so row *i*
    of every column describes the same domain.  String-valued fields
    hold dictionary codes into the owning :class:`ColumnarStore`;
    boolean fields are ``bytearray`` flags; ``categories`` and
    ``warnings`` are bitmasks.
    """

    month_index: int
    store: "ColumnarStore"
    n: int
    domain_ids: array            # 'q': dictionary-encoded domain
    row_of_domain: Dict[int, int]
    sts: bytearray               # sts_like
    transient: bytearray         # any_transient
    record_valid: bytearray
    stage: bytearray             # failed fetch stage code, 0 = ok
    syntax: bytearray            # has policy syntax errors
    mode: bytearray              # policy mode code
    enforce: bytearray           # mode == "enforce"
    max_age: array               # 'q': policy max_age, -1 = None
    warnings: array              # 'Q': policy-warning bitmask
    categories: bytearray        # Figure-4 category bitmask
    bucket: bytearray            # primary_bucket code
    consistent: bytearray
    delivery_failure: bytearray  # delivery_failure_expected
    any_invalid: bytearray       # any_invalid_mx_cert
    all_invalid: bytearray       # all_invalid_mx_cert
    cert_classes: List[Tuple[str, ...]]  # failure classes of invalid MXs
    policy_entity: bytearray
    mx_entity: bytearray
    both_outsourced: bytearray
    same_provider: bytearray
    mismatch: bytearray          # classify_snapshot class code, 0 = none
    provider_ids: array          # 'q': delegation provider, -1 = none
    provider_examples: Dict[int, str]    # first-seen CNAME per provider
    patterns_ids: array          # 'q': interned mx-pattern tuple
    hosts_ids: array             # 'q': interned MX-hostname tuple

    def domain(self, row: int) -> str:
        return self.store.domain_name(self.domain_ids[row])


class ColumnarStore:
    """Lazy per-month column views over a committed campaign.

    Construct with :meth:`from_state_dir` (shards parse straight to
    columns, verified against the manifest exactly like the object
    loader) or :meth:`from_store` (in-memory conversion through the
    same builder).  ``month_view`` loads and caches one month at a
    time — analyses over a single month never pay for the rest of the
    campaign.
    """

    def __init__(self, *, state_dir: Optional[str] = None,
                 entries: Optional[Dict[int, "MonthEntry"]] = None,
                 population: Optional[dict] = None,
                 object_store: Optional["SnapshotStore"] = None):
        self.state_dir = state_dir
        self.entries: Dict[int, "MonthEntry"] = entries or {}
        self.population = population
        self._object_store = object_store
        self._views: Dict[int, MonthView] = {}
        # -- dictionaries (shared across months) -----------------------
        self._domain_ids: Dict[str, int] = {}
        self._domain_names: List[str] = []
        self._tuple_ids: Dict[Tuple[str, ...], int] = {}
        self._tuples: List[Tuple[str, ...]] = []
        self._empty_tuple = self._tuple_id(())
        self._mode_ids: Dict[str, int] = {}
        self._mode_names: List[str] = []
        self._intern_mode("")
        self._enforce_mode = self._intern_mode("enforce")
        self._stage_ids: Dict[str, int] = {}
        self._stage_names: List[str] = []
        for stage in PolicyFetchStage:
            self._intern_stage(stage.value)
        self._warning_bits: Dict[str, int] = {
            warning.value: 1 << index
            for index, warning in enumerate(PolicyWarning)}
        self._provider_ids: Dict[str, int] = {}
        self._provider_names: List[str] = []
        # -- memoised pure functions -----------------------------------
        self._covers_one_memo: Dict[Tuple[int, str], bool] = {}
        self._covers_any_memo: Dict[Tuple[int, int], bool] = {}
        self._mismatch_memo: Dict[Tuple[int, int], int] = {}
        self._esld_memo: Dict[str, str] = {}
        self._own_memo: Dict[str, str] = {}
        self._own_sld_memo: Dict[str, Optional[DnsName]] = {}
        self._target_sld_memo: Dict[str, Optional[DnsName]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def from_state_dir(cls, state_dir: str,
                       months: Optional[List[int]] = None) -> "ColumnarStore":
        """Attach to a committed state directory without loading any
        shard yet; months materialise on first ``month_view``."""
        from repro.measurement.store_io import (
            MANIFEST_NAME, MonthEntry, read_manifest,
        )
        state_dir = os.path.abspath(state_dir)
        manifest = read_manifest(state_dir)
        if manifest is None:
            raise StoreCorruption(
                f"{state_dir}: no {MANIFEST_NAME} — not a campaign state "
                f"directory")
        wanted = None if months is None else set(months)
        entries = {}
        for raw in manifest.get("months", ()):
            entry = MonthEntry.from_dict(raw)
            if wanted is None or entry.month in wanted:
                entries[entry.month] = entry
        return cls(state_dir=state_dir, entries=entries,
                   population=manifest.get("population"))

    @classmethod
    def from_store(cls, store: "SnapshotStore") -> "ColumnarStore":
        """Columnarise an in-memory store (lazily, month by month)."""
        return cls(object_store=store)

    # -- month access --------------------------------------------------

    def months(self) -> List[int]:
        if self._object_store is not None:
            return self._object_store.months()
        return sorted(self.entries)

    def month_view(self, month: int) -> MonthView:
        view = self._views.get(month)
        if view is None:
            view = self._build_view(month, self._month_rows(month))
            self._views[month] = view
        return view

    def loaded_months(self) -> List[int]:
        """The months materialised so far (lazy-loading introspection)."""
        return sorted(self._views)

    def _month_rows(self, month: int) -> List[dict]:
        if self._object_store is not None:
            return [snapshot.to_dict()
                    for snapshot in self._object_store.month(month)]
        from repro.measurement.store_io import load_shard_rows
        entry = self.entries.get(month)
        if entry is None:
            raise KeyError(f"month {month} is not committed in "
                           f"{self.state_dir}")
        return load_shard_rows(self.state_dir, entry)

    # -- dictionaries --------------------------------------------------

    def domain_name(self, domain_id: int) -> str:
        return self._domain_names[domain_id]

    def provider_name(self, provider_id: int) -> str:
        return self._provider_names[provider_id]

    def stage_name(self, code: int) -> str:
        return self._stage_names[code - 1]

    def mode_name(self, code: int) -> str:
        return self._mode_names[code]

    def host_tuple(self, tuple_id: int) -> Tuple[str, ...]:
        return self._tuples[tuple_id]

    def _domain_id(self, domain: str) -> int:
        did = self._domain_ids.get(domain)
        if did is None:
            did = len(self._domain_names)
            self._domain_ids[domain] = did
            self._domain_names.append(domain)
        return did

    def _tuple_id(self, value: Tuple[str, ...]) -> int:
        tid = self._tuple_ids.get(value)
        if tid is None:
            tid = len(self._tuples)
            self._tuple_ids[value] = tid
            self._tuples.append(value)
        return tid

    def _intern_mode(self, mode: str) -> int:
        code = self._mode_ids.get(mode)
        if code is None:
            code = len(self._mode_names)
            self._mode_ids[mode] = code
            self._mode_names.append(mode)
        return code

    def _intern_stage(self, stage: str) -> int:
        code = self._stage_ids.get(stage)
        if code is None:
            self._stage_names.append(stage)
            code = len(self._stage_names)
            self._stage_ids[stage] = code
        return code

    def _warning_bit(self, warning: str) -> int:
        bit = self._warning_bits.get(warning)
        if bit is None:
            if len(self._warning_bits) >= 64:
                raise ValueError("more than 64 distinct policy warnings")
            bit = 1 << len(self._warning_bits)
            self._warning_bits[warning] = bit
        return bit

    def _intern_provider(self, provider: str) -> int:
        pid = self._provider_ids.get(provider)
        if pid is None:
            pid = len(self._provider_names)
            self._provider_ids[provider] = pid
            self._provider_names.append(provider)
        return pid

    # -- memoised derivations ------------------------------------------

    def _covers_one(self, patterns_id: int, host: str) -> bool:
        key = (patterns_id, host)
        hit = self._covers_one_memo.get(key)
        if hit is None:
            hit = policy_covers_mx(self._tuples[patterns_id], host)
            self._covers_one_memo[key] = hit
        return hit

    def _covers_any(self, patterns_id: int, hosts_id: int) -> bool:
        key = (patterns_id, hosts_id)
        hit = self._covers_any_memo.get(key)
        if hit is None:
            hit = any(self._covers_one(patterns_id, host)
                      for host in self._tuples[hosts_id])
            self._covers_any_memo[key] = hit
        return hit

    def _mismatch_code(self, patterns_id: int, hosts_id: int) -> int:
        key = (patterns_id, hosts_id)
        code = self._mismatch_memo.get(key)
        if code is None:
            verdict = classify_mismatch(self._tuples[patterns_id],
                                        self._tuples[hosts_id])
            code = (_MISMATCH_CODE[verdict.mismatch_class]
                    if verdict.mismatch else 0)
            self._mismatch_memo[key] = code
        return code

    def _esld_of(self, hostname: str) -> str:
        value = self._esld_memo.get(hostname)
        if value is None:
            value = _esld(hostname)
            self._esld_memo[hostname] = value
        return value

    def _own_of(self, domain: str) -> str:
        value = self._own_memo.get(domain)
        if value is None:
            value = registrable_part(domain)
            self._own_memo[domain] = value
        return value

    def _provider_of(self, domain: str,
                     cname: Optional[str]) -> Optional[str]:
        """``delegation.identify_provider`` on raw fields, memoised."""
        if not cname:
            return None
        if cname in self._target_sld_memo:
            target = self._target_sld_memo[cname]
        else:
            name = DnsName.try_parse(cname)
            target = effective_sld(name) if name is not None else None
            self._target_sld_memo[cname] = target
        if target is None:
            return None
        if domain in self._own_sld_memo:
            own = self._own_sld_memo[domain]
        else:
            own = effective_sld(DnsName.parse(domain))
            self._own_sld_memo[domain] = own
        if own is not None and target == own:
            return None
        return target.text

    # -- the column builder --------------------------------------------

    def _build_view(self, month: int, rows: List[dict]) -> MonthView:
        n = len(rows)
        esld_of = self._esld_of

        # Pass 1: the cross-section tallies the entity heuristics need
        # (paper §4.3.1) — distinct-domain popularity per MX eSLD and
        # per server IP, policy-host IP membership, and the group
        # configuration signatures.  One shard row per domain, so
        # per-row-deduped counts equal the object path's set sizes.
        mx_sld_count: Dict[str, int] = {}
        mx_ip_count: Dict[str, int] = {}
        policy_ip_rows: Dict[str, List[int]] = {}
        group_signatures: Dict[str, set] = {}
        row_slds: List[List[str]] = []
        row_obs_ips: List[List[str]] = []
        sorted_mx: List[Tuple[str, ...]] = []
        for i, row in enumerate(rows):
            mx_hosts = row["mx_hostnames"]
            slds = sorted({sld for sld in (esld_of(mx) for mx in mx_hosts)
                           if sld})
            row_slds.append(slds)
            for sld in slds:
                mx_sld_count[sld] = mx_sld_count.get(sld, 0) + 1
            ips = [ip for obs in row["mx_observations"]
                   for ip in obs["addresses"]]
            row_obs_ips.append(ips)
            for ip in set(ips):
                mx_ip_count[ip] = mx_ip_count.get(ip, 0) + 1
            policy_addresses = row["policy_host_addresses"]
            for ip in set(policy_addresses):
                policy_ip_rows.setdefault(ip, []).append(i)
            smx = tuple(sorted(mx_hosts))
            sorted_mx.append(smx)
            signature = (smx, tuple(sorted(policy_addresses)),
                         row["policy_host_cname"] is not None)
            for sld in slds:
                group_signatures.setdefault(sld, set()).add(signature)

        # Pass 2: every per-row column in one sweep; each derived value
        # is computed exactly once (and memoised per distinct input).
        view = MonthView(
            month_index=month, store=self, n=n,
            domain_ids=array("q", bytes(8 * n)), row_of_domain={},
            sts=bytearray(n), transient=bytearray(n),
            record_valid=bytearray(n), stage=bytearray(n),
            syntax=bytearray(n), mode=bytearray(n), enforce=bytearray(n),
            max_age=array("q", bytes(8 * n)),
            warnings=array("Q", bytes(8 * n)),
            categories=bytearray(n), bucket=bytearray(n),
            consistent=bytearray(n), delivery_failure=bytearray(n),
            any_invalid=bytearray(n), all_invalid=bytearray(n),
            cert_classes=[()] * n,
            policy_entity=bytearray(n), mx_entity=bytearray(n),
            both_outsourced=bytearray(n), same_provider=bytearray(n),
            mismatch=bytearray(n),
            provider_ids=array("q", bytes(8 * n)), provider_examples={},
            patterns_ids=array("q", bytes(8 * n)),
            hosts_ids=array("q", bytes(8 * n)))

        for i, row in enumerate(rows):
            domain = row["domain"]
            did = self._domain_id(domain)
            view.domain_ids[i] = did
            view.row_of_domain[did] = i

            sts = bool(row["sts_like"])
            view.sts[i] = sts
            view.record_valid[i] = bool(row["record_valid"])
            mx_hosts = row["mx_hostnames"]
            patterns = row["mx_patterns"]
            pid = self._tuple_id(tuple(patterns))
            hid = self._tuple_id(tuple(mx_hosts))
            view.patterns_ids[i] = pid
            view.hosts_ids[i] = hid
            observations = row["mx_observations"]

            transient = bool(row["dns_transient"] or row["policy_transient"]
                             or any(obs["transient"]
                                    for obs in observations))
            view.transient[i] = transient

            stage_name = row["policy_fetch_stage"]
            stage_code = (0 if stage_name is None
                          else self._intern_stage(stage_name))
            view.stage[i] = stage_code
            syntax = bool(row["policy_syntax_errors"])
            view.syntax[i] = syntax
            policy_ok = stage_name is None and not syntax

            mode = row["policy_mode"]
            mode_code = self._intern_mode(mode)
            view.mode[i] = mode_code
            enforce = mode_code == self._enforce_mode
            view.enforce[i] = enforce
            max_age = row["policy_max_age"]
            view.max_age[i] = -1 if max_age is None else int(max_age)
            mask = 0
            for warning in row["policy_warnings"]:
                mask |= self._warning_bit(warning)
            view.warnings[i] = mask

            capable = [obs for obs in observations
                       if obs["tls_established"]]
            any_invalid = any(not obs["cert_valid"] for obs in capable)
            view.any_invalid[i] = any_invalid
            view.all_invalid[i] = bool(capable) and all(
                not obs["cert_valid"] for obs in capable)
            if any_invalid:
                view.cert_classes[i] = tuple(sorted(
                    {obs["failure_class"] for obs in capable
                     if not obs["cert_valid"]}))

            consistent = True
            if policy_ok and mx_hosts and patterns:
                consistent = self._covers_any(pid, hid)
            view.consistent[i] = consistent

            if enforce and policy_ok and mx_hosts:
                matching = [mx for mx in mx_hosts
                            if self._covers_one(pid, mx)]
                if not matching:
                    view.delivery_failure[i] = True
                else:
                    observed = {obs["hostname"]: obs
                                for obs in observations}
                    usable = [observed[mx] for mx in matching
                              if mx in observed
                              and observed[mx]["tls_established"]]
                    view.delivery_failure[i] = bool(usable) and all(
                        not obs["cert_valid"] for obs in usable)

            bits = _TRANSIENT_BIT if transient else 0
            if sts:
                if not row["record_valid"]:
                    bits |= _CATEGORY_BIT[MisconfigCategory.DNS_RECORD]
                if stage_name is not None or syntax:
                    bits |= _CATEGORY_BIT[MisconfigCategory.POLICY_RETRIEVAL]
                if any_invalid:
                    bits |= _CATEGORY_BIT[MisconfigCategory.MX_CERTIFICATE]
                if not consistent:
                    bits |= _CATEGORY_BIT[MisconfigCategory.INCONSISTENCY]
            view.categories[i] = bits

            if transient:
                view.bucket[i] = _B_TRANSIENT
            elif not sts:
                view.bucket[i] = _B_NOT_STS
            else:
                bucket = _B_OK
                for category in _CATEGORY_ORDER:
                    if bits & _CATEGORY_BIT[category]:
                        bucket = _BUCKET_CODE[category.value]
                        break
                view.bucket[i] = bucket

            if policy_ok and patterns and mx_hosts:
                view.mismatch[i] = self._mismatch_code(pid, hid)

            # -- entity heuristics (EntityClassifier port) --------------
            own = self._own_of(domain)
            slds = row_slds[i]
            mx_entity, mx_sld = _E_UNCLASSIFIED, ""
            if slds:
                if all(sld == own for sld in slds):
                    mx_entity = _E_SELF
                else:
                    ip_popularity = max(
                        (mx_ip_count[ip] for ip in row_obs_ips[i]),
                        default=0)
                    popular = [sld for sld in slds
                               if mx_sld_count[sld] >= THIRD_PARTY_MIN
                               or ip_popularity >= THIRD_PARTY_MIN]
                    if popular:
                        sld = popular[0]
                        signatures = group_signatures[sld]
                        if (len(signatures) == 1
                                and not next(iter(signatures))[2]):
                            mx_entity = _E_SELF
                        else:
                            mx_entity, mx_sld = _E_THIRD, sld
                    elif all(mx_sld_count[sld] <= SELF_MAX
                             for sld in slds):
                        mx_entity = _E_SELF
            view.mx_entity[i] = mx_entity

            cname = row["policy_host_cname"]
            policy_addresses = row["policy_host_addresses"]
            policy_entity, policy_sld = _E_UNCLASSIFIED, ""
            if sts:
                if cname:
                    target_sld = esld_of(cname)
                    if target_sld and target_sld != own:
                        policy_entity, policy_sld = _E_THIRD, target_sld
                    else:
                        policy_entity = _E_SELF
                elif not policy_addresses:
                    policy_entity = _E_SELF
                else:
                    popularity = max(len(policy_ip_rows[ip])
                                     for ip in policy_addresses)
                    if popularity >= THIRD_PARTY_MIN:
                        member_signatures = {
                            sorted_mx[j] for ip in policy_addresses
                            for j in policy_ip_rows[ip]}
                        policy_entity = (_E_SELF
                                         if len(member_signatures) == 1
                                         else _E_THIRD)
                    elif popularity <= SELF_MAX:
                        policy_entity = _E_SELF
            view.policy_entity[i] = policy_entity

            both = mx_entity == _E_THIRD and policy_entity == _E_THIRD
            view.both_outsourced[i] = both
            view.same_provider[i] = bool(
                both and mx_sld and policy_sld
                and mx_sld.split(".")[0] == policy_sld.split(".")[0])

            provider = self._provider_of(domain, cname)
            if provider is None:
                view.provider_ids[i] = -1
            else:
                provider_id = self._intern_provider(provider)
                view.provider_ids[i] = provider_id
                if provider_id not in view.provider_examples:
                    view.provider_examples[provider_id] = cname or ""
        return view


# ---------------------------------------------------------------------------
# Ports of the hot aggregations
# ---------------------------------------------------------------------------

def snapshot_summary_view(view: MonthView) -> SnapshotSummary:
    """``taxonomy.snapshot_summary`` over columns; equal to the object
    path's summary field-for-field (including Counter insertion order,
    which ``most_common`` tie-breaks depend on)."""
    store = view.store
    transient_count = sum(view.transient)
    total_sts = sum(1 for i in range(view.n)
                    if view.sts[i] and not view.transient[i])
    summary = SnapshotSummary(
        month_index=view.month_index if view.n else 0,
        total_sts=total_sts, transient=transient_count)
    for i in range(view.n):
        if not view.sts[i] or view.transient[i]:
            continue
        bits = view.categories[i]
        if bits:
            summary.misconfigured += 1
            for category in _CATEGORY_ORDER:
                if bits & _CATEGORY_BIT[category]:
                    summary.category_counts[category.value] += 1
        if view.delivery_failure[i]:
            summary.delivery_failures += 1

        policy_entity = ENTITY_KEYS[view.policy_entity[i]]
        summary.policy_entity_totals[policy_entity] += 1
        if view.stage[i]:
            summary.policy_errors_by_entity[policy_entity][
                store.stage_name(view.stage[i])] += 1
        elif view.syntax[i]:
            summary.policy_errors_by_entity[policy_entity][
                "policy-syntax"] += 1

        mx_entity = ENTITY_KEYS[view.mx_entity[i]]
        summary.mx_entity_totals[mx_entity] += 1
        if view.any_invalid[i]:
            summary.mx_invalid_by_entity[mx_entity] += 1
            for failure_class in view.cert_classes[i]:
                summary.mx_cert_by_entity[mx_entity][failure_class] += 1
            if view.all_invalid[i]:
                summary.all_invalid_mx += 1
            else:
                summary.partially_invalid_mx += 1
            if view.enforce[i] and view.all_invalid[i]:
                summary.enforce_invalid_mx += 1

        if not view.consistent[i]:
            summary.inconsistent += 1
            if view.enforce[i]:
                summary.enforce_inconsistent += 1
    return summary


def taxonomy_census_view(view: MonthView) -> Dict[str, int]:
    """The total-and-exclusive ``primary_bucket`` census of one month,
    in :data:`PRIMARY_BUCKETS` order (the monitor registry's order)."""
    census = {bucket: 0 for bucket in PRIMARY_BUCKETS}
    for code in view.bucket:
        census[PRIMARY_BUCKETS[code]] += 1
    return census


def mismatch_census_view(view: MonthView) -> dict:
    """``inconsistency.mismatch_census`` over columns."""
    counts = {cls: 0 for cls in MismatchClass}
    enforce = 0
    total_sts = 0
    for i in range(view.n):
        if not view.sts[i]:
            continue
        total_sts += 1
        code = view.mismatch[i]
        if not code:
            continue
        counts[_MISMATCH_CLASSES[code - 1]] += 1
        if view.enforce[i]:
            enforce += 1
    return {"total_sts": total_sts, "counts": counts, "enforce": enforce}


def delegation_census_view(view: MonthView, top: int = 8) -> List[dict]:
    """``delegation.delegation_census`` over columns.  The Counter is
    filled in row (sorted-domain) order so ``most_common`` breaks count
    ties exactly like the object path."""
    counts: Counter = Counter()
    for provider_id in view.provider_ids:
        if provider_id >= 0:
            counts[provider_id] += 1
    rows = []
    for provider_id, count in counts.most_common(top):
        rows.append({
            "provider_sld": view.store.provider_name(provider_id),
            "domains": count,
            "cname_example": view.provider_examples[provider_id]})
    return rows


def historical_series_view(store: ColumnarStore) -> List[dict]:
    """``historical.historical_series`` (Figure 9) over columns.

    For each month's complete-domain-mismatch candidates, walk the
    domain's earlier months (ascending) and ask whether the *current*
    patterns cover any earlier MX set — all through the interned
    tuple dictionary, so each (patterns, hosts) pair is matched once
    campaign-wide."""
    months = store.months()
    rows = []
    for month in months:
        view = store.month_view(month)
        candidates = [i for i in range(view.n)
                      if view.mismatch[i] == _DOMAIN_MISMATCH_CODE]
        matched = 0
        for i in candidates:
            patterns_id = view.patterns_ids[i]
            domain_id = view.domain_ids[i]
            for earlier_month in months:
                if earlier_month >= month:
                    break
                earlier = store.month_view(earlier_month)
                j = earlier.row_of_domain.get(domain_id)
                if j is None:
                    continue
                hosts_id = earlier.hosts_ids[j]
                if hosts_id == store._empty_tuple:
                    continue
                if store._covers_any(patterns_id, hosts_id):
                    matched += 1
                    break
        rows.append({
            "month_index": month,
            "candidates": len(candidates),
            "matched": matched,
            "percent": (100.0 * matched / len(candidates)
                        if candidates else 0.0),
        })
    return rows
