"""The MTA-STS policy-checker service (``repro serve``).

Every other workload in the repo is batch; this is the always-on,
user-facing one: a validator-as-a-service on the simulated network
that answers "is this domain's MTA-STS deployment correct, and why"
— the checking infrastructure the paper's §4.7 notification
experiment presumes and Figure 5's retrieval-failure classes motivate.
Operators cannot see their own breakage; a service that anyone can
query (and that popular domains get queried about constantly) can.

Architecture
============

* **Verdict computation** reuses the scanner's single-domain path
  verbatim: :meth:`~repro.measurement.scanner.Scanner.scan_domain`
  against the live materialised world, folded through
  :func:`~repro.measurement.taxonomy.primary_bucket` and
  :func:`~repro.measurement.taxonomy.categorize` into a canonical
  JSON verdict payload — a pure function of (world, domain, instant),
  which is what makes everything below deterministic.

* **TTL verdict cache** — a :class:`~repro.core.cache.TtlCache` keyed
  by :func:`~repro.dns.name.canonical_host`, sharing the policy
  cache's RFC 8461-style expiry against the virtual clock (strict
  ``now < stored + ttl``, stale entries evicted on read).  A verdict
  for a domain publishing a policy honours that policy's ``max_age``
  (clamped into ``[min_ttl_seconds, ttl_seconds]``); domains without a
  usable ``max_age`` cache for the configured default.

* **Single-flight deduplication** extends the PR 3 resolver pattern
  (flight lock + per-key :class:`threading.Event`): a flash crowd on
  one domain computes the verdict once, every other request waits and
  is served the cached result.  A failed computation stores nothing,
  so the next waiter becomes the owner — exactly the resolver's
  semantics.

* **Seeded query mix** — an open-internet workload over the full
  domain universe (adopted or not: real checkers get asked about
  domains with no MTA-STS at all), with Zipf-ish popularity over a
  seeded ranking and periodic flash crowds that slam one domain with
  a burst of identical requests.

* **Deterministic request loop** — requests are replayed in ticks
  against a frozen virtual instant; the clock advances only between
  ticks, and month boundaries re-materialise the world through
  :class:`~repro.ecosystem.timeline.IncrementalMaterializer`, so the
  service runs against a *live, evolving* ecosystem.  Every metric on
  the determinism surface (hit/miss/collapse counters, integer-micro
  latency histograms, stampede fan-in) is derived by the
  single-threaded coordinator from batch composition — never from
  thread interleavings — so serial and threaded backends, and any two
  same-seed runs, emit **byte-identical** metrics JSONL.

Virtual latency is modelled as a pure function of the observed
snapshot (per-lookup DNS cost, policy fetch cost, per-MX probe cost),
so the p99 the monitor reports measures *deployment shape* under the
cache policy, not host scheduling.
"""

from __future__ import annotations

import json
import random
import threading
import time
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, fields
from itertools import accumulate
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.clock import DAY, Duration, Instant
from repro.core.cache import TtlCache
from repro.dns.name import canonical_host
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import (
    EcosystemTimeline, IncrementalMaterializer, TimelineConfig,
)
from repro.measurement.scanner import Scanner
from repro.measurement.snapshots import DomainSnapshot
from repro.measurement.taxonomy import categorize, primary_bucket
from repro.obs.monitor import ServeMonitor, ServeRecord, ServeThresholds
from repro.trace import Histogram, MetricsRegistry

__all__ = [
    "SERVE_LATENCY_BOUNDS", "HIT_LATENCY_MICROS",
    "ServeConfig", "ServeStats", "ServeResult",
    "VerdictCache", "QueryMixGenerator",
    "verdict_payload", "verdict_cost_micros", "verdict_ttl",
    "run_serve",
]

#: Latency histogram bounds (seconds) tuned for service latencies:
#: cache hits land in the first bucket, verdict computations spread
#: over the 0.1 s – 5 s range depending on deployment shape.
SERVE_LATENCY_BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25,
                        0.5, 1.0, 2.0, 5.0)

#: Virtual cost of serving a cached verdict.
HIT_LATENCY_MICROS = 1_000
#: Virtual cost per DNS lookup a verdict computation performs.
DNS_LATENCY_MICROS = 25_000
#: Virtual cost of the HTTPS policy fetch.
FETCH_LATENCY_MICROS = 120_000
#: Virtual cost per SMTP MX probe.
PROBE_LATENCY_MICROS = 180_000


# ---------------------------------------------------------------------------
# Verdicts: payload, cost, and TTL — pure functions of the snapshot
# ---------------------------------------------------------------------------

def verdict_payload(snapshot: DomainSnapshot) -> str:
    """The canonical JSON answer to "is this deployment correct, and
    why" — compact, sorted keys, so equal verdicts are equal bytes
    (the eviction-then-refetch identity the property tests assert)."""
    bucket = primary_bucket(snapshot)
    return json.dumps({
        "domain": snapshot.domain,
        "checked_at": snapshot.instant.epoch_seconds,
        "bucket": bucket,
        "ok": bucket == "ok",
        "sts": snapshot.sts_like,
        "categories": [c.value for c in categorize(snapshot)],
        "mode": snapshot.policy_mode,
        "max_age": snapshot.policy_max_age or 0,
        "mx": list(snapshot.mx_hostnames),
        "fetch_stage": snapshot.policy_fetch_stage or "",
        "syntax_errors": list(snapshot.policy_syntax_errors),
    }, sort_keys=True, separators=(",", ":"))


def verdict_cost_micros(snapshot: DomainSnapshot) -> int:
    """The modelled virtual cost of computing one verdict.

    A pure function of the observed snapshot: the DNS lookups the
    scanner performed (NS, apex A, MX, TLSRPT plus one per MX host),
    the HTTPS policy fetch when the domain signals MTA-STS, and one
    SMTP probe per observed MX.  Deliberately *not* measured from
    shared world counters, whose attribution is interleaving-dependent
    under the threaded backend.
    """
    lookups = 4 + len(snapshot.mx_hostnames)
    cost = DNS_LATENCY_MICROS * lookups
    if snapshot.sts_like:
        cost += FETCH_LATENCY_MICROS
    cost += PROBE_LATENCY_MICROS * len(snapshot.mx_observations)
    return cost


def verdict_ttl(snapshot: DomainSnapshot, *, ttl_seconds: int,
                min_ttl_seconds: int) -> int:
    """How long one verdict stays servable, RFC 8461-style.

    A domain publishing a parseable ``max_age`` is re-checked on its
    own cadence (clamped into ``[min_ttl, ttl]``); everything else —
    no MTA-STS, unfetchable policy — caches for the default, the
    service's equivalent of negative caching.
    """
    max_age = snapshot.policy_max_age
    if max_age:
        return max(min_ttl_seconds, min(max_age, ttl_seconds))
    return ttl_seconds


# ---------------------------------------------------------------------------
# The single-flight verdict cache
# ---------------------------------------------------------------------------

class VerdictCache:
    """A TTL verdict cache with single-flight deduplication.

    Wraps :class:`~repro.core.cache.TtlCache` (the policy cache's
    expiry/eviction semantics) with the resolver's flight protocol:
    one lock guards cache reads and the in-flight table; the first
    requester of a missing key becomes the owner and computes, every
    concurrent requester waits on the owner's event and re-checks the
    cache.  A computation that raises stores nothing — the next waiter
    becomes the new owner rather than caching a failure.
    """

    def __init__(self, clock):
        self._cache: TtlCache[str] = TtlCache(clock)
        self._flight_lock = threading.Lock()
        self._inflight: Dict[str, threading.Event] = {}
        #: Verdict computations performed (single-flight owners).
        self.computed_count = 0

    def get_or_compute(self, domain: str,
                       compute: Callable[[str], Tuple[str, int]]) -> str:
        """The fresh verdict for *domain*, computing it at most once
        per expiry across every concurrent requester.  *compute*
        receives the canonical key and returns ``(payload, ttl)``."""
        key = canonical_host(domain)
        while True:
            with self._flight_lock:
                value = self._cache.get(key)
                if value is not None:
                    return value
                flight = self._inflight.get(key)
                if flight is None:
                    flight = threading.Event()
                    self._inflight[key] = flight
                    break           # this caller owns the computation
            flight.wait()

        try:
            payload, ttl = compute(key)
            with self._flight_lock:
                self._cache.store(key, payload, ttl)
                self.computed_count += 1
            return payload
        finally:
            with self._flight_lock:
                self._inflight.pop(key, None)
            flight.set()

    def fresh(self, domain: str) -> bool:
        """Non-counting freshness probe (evicts stale entries)."""
        with self._flight_lock:
            return self._cache.fresh(canonical_host(domain))

    def lookup(self, domain: str) -> Optional[str]:
        """A counted cache read without the compute path."""
        with self._flight_lock:
            return self._cache.get(canonical_host(domain))

    def evict(self, domain: str) -> None:
        with self._flight_lock:
            self._cache.evict(canonical_host(domain))

    @property
    def hit_count(self) -> int:
        return self._cache.hit_count

    @property
    def store_count(self) -> int:
        return self._cache.store_count

    @property
    def eviction_count(self) -> int:
        return self._cache.eviction_count

    def __len__(self) -> int:
        return len(self._cache)


# ---------------------------------------------------------------------------
# The seeded open-internet query mix
# ---------------------------------------------------------------------------

class QueryMixGenerator:
    """Zipf-ish domain popularity plus periodic flash crowds.

    The popularity ranking is a seeded shuffle of the canonically
    sorted universe; request *i* samples rank ``r`` with probability
    proportional to ``1/(r+1)**zipf_s``.  Every ``flash_every``-th
    tick additionally slams one seeded domain with ``flash_size``
    back-to-back requests — the stampede the single-flight cache must
    collapse.  One generator instance feeds one replay: the sequence
    is a pure function of (seed, universe, tick schedule), identical
    across backends and runs.
    """

    def __init__(self, universe: Sequence[str], seed: int, *,
                 zipf_s: float = 1.1, flash_every: int = 0,
                 flash_size: int = 0):
        if not universe:
            raise ValueError("query mix needs a non-empty universe")
        ranked = sorted(canonical_host(name) for name in universe)
        random.Random(f"serve:{seed}:rank").shuffle(ranked)
        self.ranked = ranked
        self.zipf_s = zipf_s
        self.flash_every = flash_every
        self.flash_size = flash_size
        weights = [1.0 / (rank + 1) ** zipf_s
                   for rank in range(len(ranked))]
        self._cumulative = list(accumulate(weights))
        self._total_weight = self._cumulative[-1]
        self._rng = random.Random(f"serve:{seed}:mix")
        self.flash_domains: List[str] = []

    def sample(self) -> str:
        """One Zipf-ish draw from the ranked universe."""
        point = self._rng.random() * self._total_weight
        return self.ranked[min(bisect_left(self._cumulative, point),
                               len(self.ranked) - 1)]

    def batch(self, tick_index: int, size: int) -> Tuple[List[str], int]:
        """The requests of one tick: *size* popularity draws, plus a
        flash crowd when the tick lands on the flash cadence.  Returns
        ``(requests, flash_request_count)``."""
        requests = [self.sample() for _ in range(size)]
        flash = 0
        if (self.flash_every and self.flash_size
                and tick_index % self.flash_every == self.flash_every - 1):
            target = self.ranked[self._rng.randrange(len(self.ranked))]
            self.flash_domains.append(target)
            requests.extend([target] * self.flash_size)
            flash = self.flash_size
        return requests, flash


# ---------------------------------------------------------------------------
# Config / stats / result
# ---------------------------------------------------------------------------

@dataclass
class ServeConfig:
    """Everything that determines a serve replay's metrics feed.

    Two runs with equal configs emit byte-identical metrics JSONL
    regardless of backend — the config is the replay's identity.
    """

    scale: float = 0.02            # recipient world scale
    seed: int = 11                 # world population seed
    query_seed: int = 97           # query-mix seed
    requests: int = 100_000        # base popularity-mix requests
    batch_size: int = 2_000        # requests per tick (frozen instant)
    month_index: int = 0           # first materialised scan month
    months: int = 1                # month snapshots traversed
    ttl_seconds: int = 86_400      # default / maximum verdict TTL
    min_ttl_seconds: int = 3_600   # floor for policy-driven TTLs
    zipf_s: float = 1.1            # popularity skew
    flash_every: int = 16          # ticks between flash crowds (0=off)
    flash_size: int = 4_000        # requests per flash crowd
    record_every: int = 8          # ticks per metrics window record

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.months < 1:
            raise ValueError("months must be >= 1")
        if self.month_index < 0:
            raise ValueError("month_index must be >= 0")
        if self.min_ttl_seconds < 1:
            raise ValueError("min_ttl_seconds must be >= 1")
        if self.ttl_seconds < self.min_ttl_seconds:
            raise ValueError("ttl_seconds must be >= min_ttl_seconds")
        if self.zipf_s <= 0.0:
            raise ValueError("zipf_s must be > 0")
        if self.flash_every < 0 or self.flash_size < 0:
            raise ValueError("flash parameters must be >= 0")
        if self.record_every < 1:
            raise ValueError("record_every must be >= 1")

    @property
    def ticks(self) -> int:
        return -(-self.requests // self.batch_size)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in (data or {}).items()
                      if key in known})


@dataclass
class ServeStats:
    """Integer replay totals plus wall-clock throughput.

    :meth:`comparable` strips backend/jobs labels and wall-clock
    timings; everything left is on the serial/threaded byte-identity
    surface.
    """

    backend: str = "serial"
    jobs: int = 1
    scale: float = 0.0
    seed: int = 0
    query_seed: int = 0
    months: int = 0
    requests: int = 0
    flash_requests: int = 0
    computations: int = 0
    hits: int = 0
    collapsed: int = 0
    evictions: int = 0
    stampede_fanin_peak: int = 0
    windows: int = 0
    cache_entries: int = 0
    world_build_seconds: float = 0.0
    serve_seconds: float = 0.0

    _NON_DETERMINISTIC = ("backend", "jobs", "world_build_seconds",
                          "serve_seconds")

    @property
    def hit_rate(self) -> float:
        if not self.requests:
            return 0.0
        return (self.hits + self.collapsed) / self.requests

    @property
    def requests_per_second(self) -> float:
        if self.serve_seconds <= 0.0:
            return 0.0
        return self.requests / self.serve_seconds

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["hit_rate"] = self.hit_rate
        data["requests_per_second"] = self.requests_per_second
        return data

    def comparable(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name not in self._NON_DETERMINISTIC}


@dataclass
class ServeResult:
    """One finished serve replay."""

    config: ServeConfig
    stats: ServeStats
    monitor: ServeMonitor
    total_registry: MetricsRegistry

    def health(self):
        return self.monitor.health()

    @property
    def p99_latency_seconds(self) -> float:
        histogram = self.total_registry.histograms.get("serve.latency")
        return histogram.quantile(0.99) if histogram is not None else 0.0


# ---------------------------------------------------------------------------
# The request loop
# ---------------------------------------------------------------------------

class _VerdictService:
    """Binds the scanner's single-domain path to the verdict cache."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.scanner: Optional[Scanner] = None
        self.month_index = -1
        self.instant: Optional[Instant] = None
        #: canonical key -> virtual cost of its last computation; a
        #: pure function of (world, domain, instant), read by the
        #: coordinator for latency accounting.
        self.costs: Dict[str, int] = {}

    def bind(self, scanner: Scanner, month_index: int) -> None:
        self.scanner = scanner
        self.month_index = month_index

    def compute(self, key: str) -> Tuple[str, int]:
        snapshot = self.scanner.scan_domain(key, self.month_index,
                                            self.instant)
        self.costs[key] = verdict_cost_micros(snapshot)
        return (verdict_payload(snapshot),
                verdict_ttl(snapshot,
                            ttl_seconds=self.config.ttl_seconds,
                            min_ttl_seconds=self.config.min_ttl_seconds))


def _month_segments(timeline: EcosystemTimeline,
                    config: ServeConfig) -> List[Tuple[int, Instant, Instant]]:
    """(month, segment start, segment end) per traversed month.

    Segment boundaries land exactly on the scan instants so the
    incremental materialiser's ``advance_to`` never has to rewind; the
    final month (which has no successor instant) serves for 30 virtual
    days.
    """
    instants = timeline.scan_instants
    last = config.month_index + config.months - 1
    if last >= len(instants):
        raise ValueError(
            f"month span [{config.month_index}, {last}] exceeds the "
            f"timeline's {len(instants)} scan months")
    segments = []
    for month in range(config.month_index, last + 1):
        start = instants[month]
        end = (instants[month + 1] if month + 1 < len(instants)
               else start + Duration(30 * DAY.seconds))
        segments.append((month, start, end))
    return segments


def _split(total: int, parts: int) -> List[int]:
    """*total* split into *parts* near-equal integer shares."""
    base, remainder = divmod(total, parts)
    return [base + (1 if index < remainder else 0)
            for index in range(parts)]


class _WindowAccumulator:
    """Builds one metrics window record (single-threaded)."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.registry.histograms["serve.latency"] = Histogram(
            bounds=SERVE_LATENCY_BOUNDS)
        self.fanin_peak = 0

    def observe_batch(self, requests: int, flash: int, computations: int,
                      collapsed: int, hits: int, fanin_peak: int) -> None:
        registry = self.registry
        registry.count("serve.requests", requests)
        if flash:
            registry.count("serve.flash_requests", flash)
        registry.count("serve.computations", computations)
        registry.count("serve.collapsed", collapsed)
        registry.count("serve.hits", hits)
        self.fanin_peak = max(self.fanin_peak, fanin_peak)

    def flush(self, window_index: int, now: Instant, month: int,
              cache_entries: int, evictions: int) -> "ServeRecord":
        registry = self.registry
        registry.count("serve.stampede_fanin_peak", self.fanin_peak)
        registry.count("serve.month", month)
        registry.count("serve.cache_entries", cache_entries)
        registry.count("serve.evictions", evictions)
        return ServeRecord(window_index, now.date_string(), registry)


def run_serve(config: ServeConfig, *, backend: str = "serial",
              jobs: int = 1,
              thresholds: Optional[ServeThresholds] = None,
              metrics_path: Optional[str] = None,
              progress: Optional[Callable[[int, int], None]] = None,
              ) -> ServeResult:
    """Replay the seeded query mix against the evolving world.

    *backend* is ``serial`` (the coordinator serves every request
    inline) or ``threaded`` (every request of a tick is a task on a
    *jobs*-wide pool, exercising the single-flight path under real
    concurrency).  Both emit byte-identical metrics feeds; *progress*
    (when given) receives ``(requests_served, requests_total)`` after
    every tick.
    """
    if backend not in ("serial", "threaded"):
        raise ValueError(f"unknown serve backend {backend!r}")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if backend == "serial" and jobs != 1:
        raise ValueError("the serial backend runs exactly one job")

    build_started = time.perf_counter()
    timeline = EcosystemTimeline(TimelineConfig(
        PopulationConfig(scale=config.scale, seed=config.seed)))
    segments = _month_segments(timeline, config)
    universe = sorted(plan.name for plan in timeline.all_plans())
    mix = QueryMixGenerator(
        universe, config.query_seed, zipf_s=config.zipf_s,
        flash_every=config.flash_every, flash_size=config.flash_size)

    materializer = IncrementalMaterializer(timeline)
    snapshot = materializer.materialize(config.month_index)
    world = snapshot.world
    build_seconds = time.perf_counter() - build_started

    service = _VerdictService(config)
    service.bind(Scanner(world), config.month_index)
    cache = VerdictCache(world.clock)
    monitor = ServeMonitor(thresholds, jsonl_path=metrics_path)
    total_registry = MetricsRegistry()

    stats = ServeStats(
        backend=backend, jobs=jobs, scale=config.scale, seed=config.seed,
        query_seed=config.query_seed, months=config.months,
        world_build_seconds=build_seconds)

    ticks_total = config.ticks
    tick_requests = _split(config.requests, ticks_total)
    tick_months = _split(ticks_total, len(segments))
    pool = (ThreadPoolExecutor(max_workers=jobs)
            if backend == "threaded" else None)

    serve_started = time.perf_counter()
    window = _WindowAccumulator()
    window_index = 0
    evictions_seen = 0
    tick_index = 0
    served = 0
    try:
        for segment_index, (month, start, end) in enumerate(segments):
            if month != service.month_index:
                build_started = time.perf_counter()
                snapshot = materializer.materialize(month)
                world = snapshot.world
                service.bind(Scanner(world), month)
                stats.world_build_seconds += (time.perf_counter()
                                              - build_started)
            ticks_here = tick_months[segment_index]
            if ticks_here == 0:
                continue
            step = max(1, (end - start).seconds // ticks_here)
            for _ in range(ticks_here):
                now = world.clock.now()
                service.instant = now
                batch, flash = mix.batch(
                    tick_index, tick_requests[tick_index])

                # Group by canonical key, preserving first-seen order;
                # classify each group once against the frozen instant.
                groups: Dict[str, int] = {}
                for name in batch:
                    key = canonical_host(name)
                    groups[key] = groups.get(key, 0) + 1
                stale = [key for key in groups if not cache.fresh(key)]
                stale_set = set(stale)

                if pool is None:
                    for key in groups:
                        cache.get_or_compute(key, service.compute)
                else:
                    futures = [
                        pool.submit(cache.get_or_compute, name,
                                    service.compute)
                        for name in batch]
                    for future in futures:
                        future.result()

                # Every determinism-surface metric derives from batch
                # composition, identical for both backends.
                computations = len(stale)
                collapsed = sum(groups[key] - 1 for key in stale)
                hits = len(batch) - computations - collapsed
                fanin_peak = max((groups[key] for key in stale),
                                 default=0)
                window.observe_batch(len(batch), flash, computations,
                                     collapsed, hits, fanin_peak)
                histogram = window.registry.histograms["serve.latency"]
                for name in batch:
                    key = canonical_host(name)
                    if key in stale_set:
                        histogram.observe_micros(service.costs[key])
                    else:
                        histogram.observe_micros(HIT_LATENCY_MICROS)

                stats.requests += len(batch)
                stats.flash_requests += flash
                stats.computations += computations
                stats.collapsed += collapsed
                stats.hits += hits
                stats.stampede_fanin_peak = max(
                    stats.stampede_fanin_peak, fanin_peak)
                served += len(batch)

                tick_index += 1
                flush_due = (tick_index % config.record_every == 0
                             or tick_index == ticks_total)
                if flush_due:
                    eviction_total = cache.eviction_count
                    record = window.flush(
                        window_index, now, month, len(cache),
                        eviction_total - evictions_seen)
                    evictions_seen = eviction_total
                    monitor.add_record(record)
                    total_registry.merge(record.metrics)
                    window_index += 1
                    window = _WindowAccumulator()
                if progress is not None:
                    progress(served, config.requests)
                world.clock.advance(Duration(step))
            if month + 1 < len(timeline.scan_instants):
                world.clock.advance_to(end)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)

    stats.windows = window_index
    stats.evictions = cache.eviction_count
    stats.cache_entries = len(cache)
    stats.serve_seconds = time.perf_counter() - serve_started
    return ServeResult(config=config, stats=stats, monitor=monitor,
                       total_registry=total_registry)
