"""Managing-entity classification (paper §4.3.1).

Given one month's snapshots, classify who operates each domain's
DNS, MX hosts, and policy server:

* **Heuristic 1 (third party)** — an entity operating infrastructure
  for at least ``third_party_min`` (default 50) distinct domains is a
  provider.  Popularity is tallied over the registrable domain (eSLD)
  of MX/NS hostnames *and* over server IP addresses, since some
  providers give every customer a unique hostname on shared addresses.
  The refinement for "popular but single administrator" groups
  (mx.l.mxascen.com): when every domain behind a popular entity shares
  one identical configuration signature (same MX set, same policy-host
  addresses), the group is one administrator's self-hosted fleet.
* **Heuristic 2 (self-managed)** — an NS or MX sharing the domain's
  own eSLD is self-managed; a policy host serving at most
  ``self_max`` (default 5) domains is self-managed.
* Policy hosts reached via a CNAME pointing at a *different* eSLD are
  third-party (that is what delegation is).

Everything else stays :attr:`ManagingEntity.UNCLASSIFIED`, mirroring
the paper's ~20% unclassifiable share.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.dns.name import DnsName, registrable_part
from repro.errors import ManagingEntity
from repro.measurement.snapshots import DomainSnapshot

THIRD_PARTY_MIN = 50
SELF_MAX = 5


@dataclass
class EntityVerdict:
    """Who manages each component of one domain."""

    domain: str
    dns: ManagingEntity = ManagingEntity.UNCLASSIFIED
    mx: ManagingEntity = ManagingEntity.UNCLASSIFIED
    policy: ManagingEntity = ManagingEntity.UNCLASSIFIED
    mx_provider_sld: str = ""
    policy_provider_sld: str = ""

    @property
    def both_outsourced(self) -> bool:
        return (self.mx is ManagingEntity.THIRD_PARTY
                and self.policy is ManagingEntity.THIRD_PARTY)

    @property
    def same_provider(self) -> bool:
        """Whether one provider manages both MX and policy hosting.

        Per §4.5.1 the comparison uses the second label of the policy
        host CNAME target versus the MX records' (``tutanota`` in both
        ``mail.tutanota.de`` and ``mta-sts.tutanota.com``).
        """
        if not self.both_outsourced:
            return False
        if not self.mx_provider_sld or not self.policy_provider_sld:
            return False
        mx_label = self.mx_provider_sld.split(".")[0]
        policy_label = self.policy_provider_sld.split(".")[0]
        return mx_label == policy_label


class EntityClassifier:
    """Classifies one month's snapshot cross-section."""

    def __init__(self, snapshots: List[DomainSnapshot],
                 *, third_party_min: int = THIRD_PARTY_MIN,
                 self_max: int = SELF_MAX):
        self._snapshots = snapshots
        self._third_min = third_party_min
        self._self_max = self_max
        self._mx_sld_domains: Dict[str, set] = defaultdict(set)
        self._mx_ip_domains: Dict[str, set] = defaultdict(set)
        self._ns_sld_domains: Dict[str, set] = defaultdict(set)
        self._policy_ip_domains: Dict[str, set] = defaultdict(set)
        self._group_signatures: Dict[str, set] = defaultdict(set)
        self._tally()

    def _tally(self) -> None:
        for snap in self._snapshots:
            for mx in snap.mx_hostnames:
                sld = _esld(mx)
                if sld:
                    self._mx_sld_domains[sld].add(snap.domain)
            for obs in snap.mx_observations:
                for ip in obs.addresses:
                    self._mx_ip_domains[ip].add(snap.domain)
            for ns in snap.ns_hostnames:
                sld = _esld(ns)
                if sld:
                    self._ns_sld_domains[sld].add(snap.domain)
            for ip in snap.policy_host_addresses:
                self._policy_ip_domains[ip].add(snap.domain)
            signature = (tuple(sorted(snap.mx_hostnames)),
                         tuple(sorted(snap.policy_host_addresses)),
                         snap.policy_host_cname is not None)
            for mx in snap.mx_hostnames:
                sld = _esld(mx)
                if sld:
                    self._group_signatures[sld].add(signature)

    # -- per-component verdicts -----------------------------------------------

    def classify(self, snap: DomainSnapshot) -> EntityVerdict:
        verdict = EntityVerdict(domain=snap.domain)
        verdict.dns = self._classify_dns(snap)
        verdict.mx, verdict.mx_provider_sld = self._classify_mx(snap)
        verdict.policy, verdict.policy_provider_sld = \
            self._classify_policy(snap)
        return verdict

    def classify_all(self) -> Dict[str, EntityVerdict]:
        return {snap.domain: self.classify(snap)
                for snap in self._snapshots}

    def _classify_dns(self, snap: DomainSnapshot) -> ManagingEntity:
        own = registrable_part(snap.domain)
        slds = {_esld(ns) for ns in snap.ns_hostnames} - {""}
        if not slds:
            return ManagingEntity.UNCLASSIFIED
        if own in slds:
            return ManagingEntity.SELF_MANAGED
        if any(len(self._ns_sld_domains[s]) >= self._third_min for s in slds):
            return ManagingEntity.THIRD_PARTY
        return ManagingEntity.UNCLASSIFIED

    def _classify_mx(self, snap: DomainSnapshot):
        own = registrable_part(snap.domain)
        slds = sorted({_esld(mx) for mx in snap.mx_hostnames} - {""})
        if not slds:
            return ManagingEntity.UNCLASSIFIED, ""
        # Heuristic 2: MX under the domain's own eSLD is self-managed.
        if all(s == own for s in slds):
            return ManagingEntity.SELF_MANAGED, ""
        popular = [s for s in slds
                   if len(self._mx_sld_domains[s]) >= self._third_min
                   or self._ip_popularity(snap) >= self._third_min]
        if popular:
            sld = popular[0]
            # The single-administrator refinement: one configuration
            # signature across the entire popular group, and no CNAME
            # delegation (genuine providers take policy hosting via
            # CNAME; a lone admin's fleet points A records at itself).
            signatures = self._group_signatures[sld]
            if len(signatures) == 1 and not next(iter(signatures))[2]:
                return ManagingEntity.SELF_MANAGED, ""
            return ManagingEntity.THIRD_PARTY, sld
        if all(len(self._mx_sld_domains[s]) <= self._self_max for s in slds):
            return ManagingEntity.SELF_MANAGED, ""
        return ManagingEntity.UNCLASSIFIED, ""

    def _ip_popularity(self, snap: DomainSnapshot) -> int:
        counts = [len(self._mx_ip_domains[ip])
                  for obs in snap.mx_observations for ip in obs.addresses]
        return max(counts, default=0)

    def _classify_policy(self, snap: DomainSnapshot):
        if not snap.sts_like:
            return ManagingEntity.UNCLASSIFIED, ""
        own = registrable_part(snap.domain)
        if snap.policy_host_cname:
            target_sld = _esld(snap.policy_host_cname)
            if target_sld and target_sld != own:
                return ManagingEntity.THIRD_PARTY, target_sld
            return ManagingEntity.SELF_MANAGED, ""
        if not snap.policy_host_addresses:
            # Unresolvable policy host: judged by who runs the DNS zone
            # content — an A record the owner forgot counts as self.
            return ManagingEntity.SELF_MANAGED, ""
        popularity = max(len(self._policy_ip_domains[ip])
                         for ip in snap.policy_host_addresses)
        if popularity >= self._third_min:
            if self._shared_admin_policy_group(snap):
                return ManagingEntity.SELF_MANAGED, ""
            return ManagingEntity.THIRD_PARTY, ""
        if popularity <= self._self_max:
            return ManagingEntity.SELF_MANAGED, ""
        return ManagingEntity.UNCLASSIFIED, ""

    def _shared_admin_policy_group(self, snap: DomainSnapshot) -> bool:
        """True when every domain on this policy IP shares one MX set."""
        domains = set()
        for ip in snap.policy_host_addresses:
            domains |= self._policy_ip_domains[ip]
        by_domain = {s.domain: s for s in self._snapshots}
        signatures = {tuple(sorted(by_domain[d].mx_hostnames))
                      for d in domains if d in by_domain}
        return len(signatures) == 1


def _esld(hostname: str) -> str:
    name = DnsName.try_parse(hostname)
    if name is None:
        return ""
    from repro.dns.name import effective_sld
    sld = effective_sld(name)
    return sld.text if sld is not None else name.text
