"""Scan execution: backends, sharding, and per-stage instrumentation.

The paper's monthly component scans cover every MTA-STS domain in four
TLD zone files — at that scale the scan pipeline's cost, not the
analysis, dominates a campaign.  :class:`ScanExecutor` runs one
month's scan through a pluggable backend:

``serial``
    one :class:`~repro.measurement.scanner.Scanner` walks the domains
    in canonical (sorted) order — the reference execution;

``threaded``
    the canonical domain order is cut into *jobs* deterministic
    contiguous shards, each scanned by its own ``Scanner`` over the
    shared world, and the per-shard stores are merged back in
    canonical order.

Both backends produce byte-identical
:class:`~repro.measurement.snapshots.SnapshotStore` contents (the
determinism tests assert this through ``canonical_bytes()``): a
domain's snapshot is a pure function of the world and the scan
instant, the per-snapshot memo caches (SMTP probe results keyed by MX
hostname, PKIX verdicts keyed by certificate fingerprint) are
compute-once under a lock, and the merge order is fixed.

Every scan also yields a :class:`ScanStats` — the per-stage counter
and timing block (DNS queries and cache hits, policy fetches, SMTP
probes, PKIX validations, wall-clock splits) surfaced by ``Scanner``
consumers, the CLI ``audit`` command, and the benchmark harness.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.clock import Instant
from repro.dns.name import canonical_host
from repro.ecosystem.world import World
from repro.measurement.scanner import Scanner
from repro.measurement.snapshots import SnapshotStore
from repro.obs.profile import ProfileReport, StageProfiler
from repro.obs.progress import ProgressEvent, ProgressTracker
from repro.pki.validation import chain_cache_stats, flush_chain_cache
from repro.trace import MetricsRegistry, TraceReport, Tracer

BACKENDS = ("serial", "threaded")


@dataclass
class ScanStats:
    """Per-stage counters and timings for one (or several) scans.

    Counters are deltas measured around the scan, so a shared resolver
    or probe arriving with non-zero lifetime totals does not skew the
    numbers.  ``merge`` folds several months together; counters and
    timings add, ``domains_scanned`` accumulates.
    """

    backend: str = "serial"
    jobs: int = 1
    months: int = 0
    domains_scanned: int = 0
    # wall-clock splits (seconds)
    world_build_seconds: float = 0.0
    scan_seconds: float = 0.0
    # DNS stage
    dns_queries: int = 0
    dns_cache_hits: int = 0
    dns_negative_cache_hits: int = 0
    # policy stage
    policy_fetches: int = 0
    # SMTP stage
    smtp_probes: int = 0
    smtp_probe_cache_hits: int = 0
    # PKIX offline validation
    pkix_validations: int = 0
    pkix_cache_hits: int = 0
    # retry / fault-injection layer
    connect_retries: int = 0
    faults_injected: int = 0
    retry_backoff_seconds: float = 0.0
    transient_domains: int = 0
    # checkpoint / persistence layer (campaigns run with a state dir)
    checkpoints_written: int = 0
    checkpoint_seconds: float = 0.0

    _COUNTERS = ("months", "domains_scanned", "world_build_seconds",
                 "scan_seconds", "dns_queries", "dns_cache_hits",
                 "dns_negative_cache_hits", "policy_fetches",
                 "smtp_probes", "smtp_probe_cache_hits",
                 "pkix_validations", "pkix_cache_hits",
                 "connect_retries", "faults_injected",
                 "retry_backoff_seconds", "transient_domains",
                 "checkpoints_written", "checkpoint_seconds")

    def merge(self, other: "ScanStats") -> None:
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @classmethod
    def from_metrics(cls, metrics: MetricsRegistry, *,
                     backend: str = "serial", jobs: int = 1,
                     months: int = 1, scan_seconds: float = 0.0,
                     world_build_seconds: float = 0.0) -> "ScanStats":
        """A stats block as a *view* over a merged trace registry.

        When tracing is enabled the registry is incremented at exactly
        the sites where the legacy world counters are, so this view
        must equal the counter-delta stats the executor computes — the
        trace determinism tests assert that equality.
        """
        get = metrics.get
        return cls(
            backend=backend, jobs=jobs, months=months,
            domains_scanned=get("scan.domains"),
            world_build_seconds=world_build_seconds,
            scan_seconds=scan_seconds,
            dns_queries=get("dns.queries"),
            dns_cache_hits=get("dns.cache_hits"),
            dns_negative_cache_hits=get("dns.negative_cache_hits"),
            policy_fetches=get("policy.fetches"),
            smtp_probes=get("smtp.probes"),
            smtp_probe_cache_hits=get("smtp.cache_hits"),
            pkix_validations=get("pkix.validations"),
            pkix_cache_hits=get("pkix.cache_hits"),
            connect_retries=get("net.connect_retries"),
            faults_injected=get("net.faults_injected"),
            retry_backoff_seconds=get("net.backoff_micros") / 1_000_000,
            transient_domains=get("scan.transient_domains"),
        )

    def as_dict(self) -> Dict[str, int | float | str]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, int | float | str]) -> "ScanStats":
        """Rebuild a stats block from :meth:`as_dict` output.

        Unknown keys are ignored (a newer writer may have recorded more
        counters than this reader knows), missing keys keep their
        defaults — checkpointed campaign state stays loadable across
        counter additions.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})

    @staticmethod
    def _hit_line(label: str, work: int, hits: int) -> str:
        total = work + hits
        rate = 100.0 * hits / total if total else 0.0
        return (f"  {label:<22} {work:>9,}   "
                f"cache hits {hits:>9,}  ({rate:5.1f}%)")

    def render_table(self) -> str:
        """The human-readable stats block printed by ``audit --stats``."""
        lines = [
            f"scan stats  [backend={self.backend} jobs={self.jobs} "
            f"months={self.months}]",
            f"  {'domains scanned':<22} {self.domains_scanned:>9,}",
            self._hit_line("dns queries", self.dns_queries,
                           self.dns_cache_hits),
            f"  {'dns negative hits':<22} "
            f"{self.dns_negative_cache_hits:>9,}",
            f"  {'policy fetches':<22} {self.policy_fetches:>9,}",
            self._hit_line("smtp probes", self.smtp_probes,
                           self.smtp_probe_cache_hits),
            self._hit_line("pkix validations", self.pkix_validations,
                           self.pkix_cache_hits),
            f"  {'connect retries':<22} {self.connect_retries:>9,}",
            f"  {'faults injected':<22} {self.faults_injected:>9,}",
            f"  {'transient domains':<22} {self.transient_domains:>9,}",
            f"  {'retry backoff':<22} "
            f"{self.retry_backoff_seconds:>10.2f}s (virtual)",
            f"  {'world build':<22} {self.world_build_seconds:>10.2f}s",
            f"  {'scan':<22} {self.scan_seconds:>10.2f}s",
        ]
        if self.checkpoints_written:
            lines.append(f"  {'checkpoints written':<22} "
                         f"{self.checkpoints_written:>9,}")
            lines.append(f"  {'checkpoint commit':<22} "
                         f"{self.checkpoint_seconds:>10.2f}s")
        return "\n".join(lines)


def partition_domains(domains: Iterable[str],
                      shards: int) -> List[List[str]]:
    """Cut the canonical domain order into *shards* contiguous slices.

    Deterministic: the same domain set and shard count always yield
    the same partition, independent of input order or duplicates.
    Sizes differ by at most one, earlier shards taking the remainder.
    """
    ordered = sorted({canonical_host(d) for d in domains} - {""})
    shards = max(1, min(shards, len(ordered)) if ordered else 1)
    base, remainder = divmod(len(ordered), shards)
    slices: List[List[str]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < remainder else 0)
        slices.append(ordered[start:start + size])
        start += size
    return slices


class ScanExecutor:
    """Runs one month's scan through a configurable backend.

    The executor owns the scan-scoped cache lifecycle: it turns on the
    SMTP probe memo cache for the duration of one snapshot scan and
    flushes it afterwards (a probe result is only valid while the
    world does not mutate), and it flushes the PKIX chain cache at
    scan start so memory stays bounded across a long campaign.
    """

    def __init__(self, *, backend: str = "serial", jobs: int = 1,
                 trace: bool = False, profile: bool = False,
                 progress: Optional[Callable[[ProgressEvent], None]] = None,
                 heartbeat_every: int = 0):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.backend = backend
        self.jobs = jobs if backend == "threaded" else 1
        #: With tracing on, every scan leaves its merged
        #: :class:`~repro.trace.TraceReport` on :attr:`last_trace`.
        self.trace_enabled = trace
        self.last_trace: Optional[TraceReport] = None
        #: With profiling on, every scan leaves its merged wall-clock
        #: :class:`~repro.obs.profile.ProfileReport` on
        #: :attr:`last_profile`.
        self.profile_enabled = profile
        self.last_profile: Optional[ProfileReport] = None
        #: Progress callback: receives
        #: :class:`~repro.obs.progress.ProgressEvent` heartbeats while
        #: a scan runs (thread-safe under the threaded backend).
        self.progress = progress
        self.heartbeat_every = heartbeat_every

    def scan(self, world: World, domains: Iterable[str], month_index: int,
             store: Optional[SnapshotStore] = None,
             instant: Optional[Instant] = None,
             ) -> tuple[SnapshotStore, ScanStats]:
        """Scan *domains* in *world*, returning the store and stats."""
        store = store if store is not None else SnapshotStore()
        instant = instant if instant is not None else world.now()
        shards = partition_domains(domains, self.jobs)
        tracker = self._new_tracker(shards, month_index, instant)

        resolver = world.resolver
        probe = world.smtp_probe
        probe_was_cached = probe.cache_enabled
        probe.cache_enabled = True
        probe.flush_cache()
        flush_chain_cache()

        before = self._counters(world)
        started = time.perf_counter()
        try:
            if self.backend == "threaded" and len(shards) > 1:
                scanners = self._scan_threaded(world, shards, month_index,
                                               instant, store, tracker)
            else:
                scanner = Scanner(world, tracer=self._new_tracer(),
                                  profiler=self._new_profiler())
                scanner.scan_all(
                    [d for shard in shards for d in shard],
                    month_index, store, instant,
                    on_domain=tracker.domain_done if tracker else None)
                if tracker is not None:
                    tracker.shard_done()
                scanners = [scanner]
        finally:
            probe.flush_cache()
            probe.cache_enabled = probe_was_cached
            if tracker is not None:
                tracker.finish()
        elapsed = time.perf_counter() - started

        if self.trace_enabled:
            self.last_trace = TraceReport.merge(
                [s.tracer for s in scanners if s.tracer is not None],
                instant.epoch_seconds)
        if self.profile_enabled:
            self.last_profile = ProfileReport.merge(
                [s.profiler for s in scanners if s.profiler is not None])

        after = self._counters(world)
        stats = ScanStats(
            backend=self.backend, jobs=self.jobs, months=1,
            domains_scanned=sum(len(shard) for shard in shards),
            scan_seconds=elapsed,
            policy_fetches=sum(s.policy_fetches for s in scanners),
            transient_domains=sum(s.transient_domains for s in scanners),
            **{name: after[name] - before[name] for name in after},
        )
        return store, stats

    def _scan_threaded(self, world: World, shards: Sequence[List[str]],
                       month_index: int, instant: Instant,
                       store: SnapshotStore,
                       tracker: Optional[ProgressTracker] = None,
                       ) -> List[Scanner]:
        """One Scanner per shard; merge shard stores in shard order."""
        scanners = [Scanner(world, tracer=self._new_tracer(),
                            profiler=self._new_profiler())
                    for _ in shards]
        shard_stores = [SnapshotStore() for _ in shards]

        def scan_shard(scanner: Scanner, shard: List[str],
                       shard_store: SnapshotStore) -> None:
            scanner.scan_all(
                shard, month_index, shard_store, instant,
                on_domain=tracker.domain_done if tracker else None)
            if tracker is not None:
                tracker.shard_done()

        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            futures = [
                pool.submit(scan_shard, scanner, shard, shard_store)
                for scanner, shard, shard_store
                in zip(scanners, shards, shard_stores)
            ]
            for future in futures:
                future.result()
        for shard_store in shard_stores:
            store.merge(shard_store)
        return scanners

    def _new_tracer(self) -> Optional[Tracer]:
        return Tracer() if self.trace_enabled else None

    def _new_profiler(self) -> Optional[StageProfiler]:
        return StageProfiler() if self.profile_enabled else None

    def _new_tracker(self, shards: Sequence[List[str]], month_index: int,
                     instant: Instant) -> Optional[ProgressTracker]:
        if self.progress is None:
            return None
        return ProgressTracker(
            self.progress, month_index=month_index, backend=self.backend,
            domains_total=sum(len(shard) for shard in shards),
            shards_total=len(shards),
            virtual_epoch=instant.epoch_seconds,
            heartbeat_every=self.heartbeat_every)

    @staticmethod
    def _counters(world: World) -> Dict[str, int | float]:
        pkix = chain_cache_stats()
        return {
            "dns_queries": world.resolver.query_count,
            "dns_cache_hits": world.resolver.cache_hits,
            "dns_negative_cache_hits": world.resolver.negative_cache_hits,
            "smtp_probes": world.smtp_probe.probes_performed,
            "smtp_probe_cache_hits": world.smtp_probe.cache_hits,
            "pkix_validations": int(pkix["validations"]),
            "pkix_cache_hits": int(pkix["cache_hits"]),
            "connect_retries": world.network.retried_connects,
            "faults_injected": world.network.faults_injected,
            "retry_backoff_seconds": world.network.backoff_seconds,
        }
