"""Scan execution: backends, sharding, and per-stage instrumentation.

The paper's monthly component scans cover every MTA-STS domain in four
TLD zone files — at that scale the scan pipeline's cost, not the
analysis, dominates a campaign.  :class:`ScanExecutor` runs one
month's scan through a pluggable backend:

``serial``
    one :class:`~repro.measurement.scanner.Scanner` walks the domains
    in canonical (sorted) order — the reference execution;

``threaded``
    the canonical domain order is cut into *jobs* deterministic
    contiguous shards, each scanned by its own ``Scanner`` over the
    shared world, and the per-shard stores are merged back in
    canonical order;

``process``
    *jobs* shard workers in separate OS processes (``spawn``), each
    materialising **only its slice** of the population (see
    :meth:`~repro.ecosystem.timeline.EcosystemTimeline.materialize`'s
    ``shard`` argument), scanning it against its private world, and
    streaming the resulting snapshots back as the on-disk shard JSONL
    (:func:`~repro.measurement.store_io.month_shard_text`) for the
    parent to digest-verify, parse, and merge in shard order.  Because
    the workers share no caches, each one journals the memoizable work
    it performed (live DNS queries, settled SMTP probes, PKIX
    validations) so the parent can subtract cross-worker duplicates
    and recover serial-exact :class:`ScanStats` — see
    :class:`ShardScanJournal`.  This backend starts from a
    :class:`~repro.ecosystem.population.PopulationConfig`, not a
    pre-built world, so it is driven through :meth:`ScanExecutor.
    scan_population` rather than :meth:`ScanExecutor.scan`.

All backends produce byte-identical
:class:`~repro.measurement.snapshots.SnapshotStore` contents (the
determinism tests assert this through ``canonical_bytes()``): a
domain's snapshot is a pure function of the world and the scan
instant, the per-snapshot memo caches (SMTP probe results keyed by MX
hostname, PKIX verdicts keyed by certificate fingerprint) are
compute-once under a lock, and the merge order is fixed.

Every scan also yields a :class:`ScanStats` — the per-stage counter
and timing block (DNS queries and cache hits, policy fetches, SMTP
probes, PKIX validations, wall-clock splits) surfaced by ``Scanner``
consumers, the CLI ``audit`` command, and the benchmark harness.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, fields
from queue import Empty
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from repro.clock import Instant
from repro.ecosystem.population import PopulationConfig, partition_names
from repro.ecosystem.timeline import (
    EcosystemTimeline, TimelineConfig, population_to_dict,
    timeline_from_population,
)
from repro.ecosystem.world import World
from repro.measurement.scanner import Scanner
from repro.measurement.snapshots import SnapshotStore
from repro.measurement.store_io import month_shard_text, shard_digest
from repro.netsim.network import FaultPlan
from repro.obs.profile import ProfileReport, StageProfiler
from repro.obs.progress import ProgressEvent, ProgressTracker
from repro.pki.validation import (
    chain_cache_keys, chain_cache_stats, flush_chain_cache,
)
from repro.trace import MetricsRegistry, TraceReport, Tracer

BACKENDS = ("serial", "threaded", "process")


@dataclass
class ScanStats:
    """Per-stage counters and timings for one (or several) scans.

    Counters are deltas measured around the scan, so a shared resolver
    or probe arriving with non-zero lifetime totals does not skew the
    numbers.  ``merge`` folds several months together; counters and
    timings add, ``domains_scanned`` accumulates.
    """

    backend: str = "serial"
    jobs: int = 1
    months: int = 0
    domains_scanned: int = 0
    # wall-clock splits (seconds)
    world_build_seconds: float = 0.0
    scan_seconds: float = 0.0
    # DNS stage
    dns_queries: int = 0
    dns_cache_hits: int = 0
    dns_negative_cache_hits: int = 0
    # policy stage
    policy_fetches: int = 0
    # SMTP stage
    smtp_probes: int = 0
    smtp_probe_cache_hits: int = 0
    # PKIX offline validation
    pkix_validations: int = 0
    pkix_cache_hits: int = 0
    # retry / fault-injection layer
    connect_retries: int = 0
    faults_injected: int = 0
    retry_backoff_seconds: float = 0.0
    transient_domains: int = 0
    # checkpoint / persistence layer (campaigns run with a state dir)
    checkpoints_written: int = 0
    checkpoint_seconds: float = 0.0

    _COUNTERS = ("months", "domains_scanned", "world_build_seconds",
                 "scan_seconds", "dns_queries", "dns_cache_hits",
                 "dns_negative_cache_hits", "policy_fetches",
                 "smtp_probes", "smtp_probe_cache_hits",
                 "pkix_validations", "pkix_cache_hits",
                 "connect_retries", "faults_injected",
                 "retry_backoff_seconds", "transient_domains",
                 "checkpoints_written", "checkpoint_seconds")

    def merge(self, other: "ScanStats") -> None:
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @classmethod
    def from_metrics(cls, metrics: MetricsRegistry, *,
                     backend: str = "serial", jobs: int = 1,
                     months: int = 1, scan_seconds: float = 0.0,
                     world_build_seconds: float = 0.0) -> "ScanStats":
        """A stats block as a *view* over a merged trace registry.

        When tracing is enabled the registry is incremented at exactly
        the sites where the legacy world counters are, so this view
        must equal the counter-delta stats the executor computes — the
        trace determinism tests assert that equality.
        """
        get = metrics.get
        return cls(
            backend=backend, jobs=jobs, months=months,
            domains_scanned=get("scan.domains"),
            world_build_seconds=world_build_seconds,
            scan_seconds=scan_seconds,
            dns_queries=get("dns.queries"),
            dns_cache_hits=get("dns.cache_hits"),
            dns_negative_cache_hits=get("dns.negative_cache_hits"),
            policy_fetches=get("policy.fetches"),
            smtp_probes=get("smtp.probes"),
            smtp_probe_cache_hits=get("smtp.cache_hits"),
            pkix_validations=get("pkix.validations"),
            pkix_cache_hits=get("pkix.cache_hits"),
            connect_retries=get("net.connect_retries"),
            faults_injected=get("net.faults_injected"),
            retry_backoff_seconds=get("net.backoff_micros") / 1_000_000,
            transient_domains=get("scan.transient_domains"),
        )

    def as_dict(self) -> Dict[str, int | float | str]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, int | float | str]) -> "ScanStats":
        """Rebuild a stats block from :meth:`as_dict` output.

        Unknown keys are ignored (a newer writer may have recorded more
        counters than this reader knows), missing keys keep their
        defaults — checkpointed campaign state stays loadable across
        counter additions.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})

    @staticmethod
    def _hit_line(label: str, work: int, hits: int) -> str:
        total = work + hits
        rate = 100.0 * hits / total if total else 0.0
        return (f"  {label:<22} {work:>9,}   "
                f"cache hits {hits:>9,}  ({rate:5.1f}%)")

    def render_table(self) -> str:
        """The human-readable stats block printed by ``audit --stats``."""
        lines = [
            f"scan stats  [backend={self.backend} jobs={self.jobs} "
            f"months={self.months}]",
            f"  {'domains scanned':<22} {self.domains_scanned:>9,}",
            self._hit_line("dns queries", self.dns_queries,
                           self.dns_cache_hits),
            f"  {'dns negative hits':<22} "
            f"{self.dns_negative_cache_hits:>9,}",
            f"  {'policy fetches':<22} {self.policy_fetches:>9,}",
            self._hit_line("smtp probes", self.smtp_probes,
                           self.smtp_probe_cache_hits),
            self._hit_line("pkix validations", self.pkix_validations,
                           self.pkix_cache_hits),
            f"  {'connect retries':<22} {self.connect_retries:>9,}",
            f"  {'faults injected':<22} {self.faults_injected:>9,}",
            f"  {'transient domains':<22} {self.transient_domains:>9,}",
            f"  {'retry backoff':<22} "
            f"{self.retry_backoff_seconds:>10.2f}s (virtual)",
            f"  {'world build':<22} {self.world_build_seconds:>10.2f}s",
            f"  {'scan':<22} {self.scan_seconds:>10.2f}s",
        ]
        if self.checkpoints_written:
            lines.append(f"  {'checkpoints written':<22} "
                         f"{self.checkpoints_written:>9,}")
            lines.append(f"  {'checkpoint commit':<22} "
                         f"{self.checkpoint_seconds:>10.2f}s")
        return "\n".join(lines)


def partition_domains(domains: Iterable[str],
                      shards: int) -> List[List[str]]:
    """Cut the canonical domain order into *shards* contiguous slices.

    Deterministic: the same domain set and shard count always yield
    the same partition, independent of input order or duplicates.
    Sizes differ by at most one, earlier shards taking the remainder.

    Delegates to :func:`~repro.ecosystem.population.partition_names`,
    which is the single source of truth for the partition — the
    process backend's shard-scoped world materialisation partitions
    through the same function, so a worker's deployed domain set and
    the executor's shard slices can never drift apart.
    """
    return partition_names(domains, shards)


class ShardScanJournal:
    """Per-worker record of the memoizable work a shard performed.

    Under the process backend every worker owns private caches, so
    work that the serial scan memoizes globally — live DNS queries
    that populate the resolver cache, settled SMTP probe executions,
    PKIX chain validations — is re-executed once per worker that
    needs it.  Snapshot *contents* are unaffected (every re-execution
    is byte-identical by construction: fault decisions are pure
    functions of the endpoint, attempt and virtual clock, and the
    clock never advances during a scan), but the per-worker counters
    over-count the duplicated work.  The journal captures exactly
    what was duplicated and what it cost, so the parent can subtract
    ``(multiplicity - 1) x cost`` per item and recover serial-exact
    :class:`ScanStats`:

    * every live DNS query that stored a cache entry is journaled
      with its key, negative flag, and the connect retries / faults /
      backoff the lookup itself spent;
    * every *settled* probe execution (the memoized kind — transient
      verdicts are never cached, hence never duplicated beyond their
      per-domain call count, which partitions exactly) is journaled
      with a full cost vector.  Costs of live DNS lookups nested
      inside the probe window are excluded from the probe's vector —
      they are corrected through their own DNS journal entries, and
      counting them in both would double-subtract.

    The journal is attached to a worker's resolver and probe by the
    process backend only; it is written from exactly one thread and
    must never be combined with the threaded backend.
    """

    def __init__(self, world: World):
        self._resolver = world.resolver
        self._network = world.network
        #: ``(key, negative, connect_retries, faults, backoff_micros)``
        #: per live DNS query that stored a (positive or negative)
        #: cache entry, in execution order.
        self.dns_log: List[Tuple[str, bool, int, int, int]] = []
        #: settled probe hostname -> its execution cost vector.
        self.probe_costs: Dict[str, Dict[str, int]] = {}

    def _net_state(self) -> Tuple[int, int, int]:
        net = self._network
        return (net.retried_connects, net.faults_injected,
                net.backoff_micros)

    # -- resolver hooks ----------------------------------------------

    def dns_started(self) -> Tuple[int, int, int]:
        return self._net_state()

    def dns_finished(self, key: str, negative: bool, token) -> None:
        retries0, faults0, backoff0 = token
        retries1, faults1, backoff1 = self._net_state()
        self.dns_log.append((key, bool(negative), retries1 - retries0,
                             faults1 - faults0, backoff1 - backoff0))

    # -- probe hooks -------------------------------------------------

    def probe_started(self):
        resolver = self._resolver
        pkix = chain_cache_stats()
        return (len(self.dns_log),
                resolver.query_count + resolver.cache_hits,
                resolver.negative_cache_hits,
                int(pkix["validations"]) + int(pkix["cache_hits"]),
                self._net_state())

    def probe_finished(self, name: str, transient: bool, token) -> None:
        if transient:
            return
        log_start, dns0, neg0, pkix0, (r0, f0, b0) = token
        resolver = self._resolver
        pkix = chain_cache_stats()
        window = self.dns_log[log_start:]
        r1, f1, b1 = self._net_state()
        self.probe_costs[name] = {
            # request counts are call counts — independent of each
            # worker's cache state, hence identical across workers
            # (the parent asserts this).
            "dns_requests": (resolver.query_count + resolver.cache_hits
                             - dns0),
            "neg_requests": (resolver.negative_cache_hits - neg0
                             + sum(1 for entry in window if entry[1])),
            "pkix_requests": (int(pkix["validations"])
                              + int(pkix["cache_hits"]) - pkix0),
            "connect_retries": r1 - r0 - sum(e[2] for e in window),
            "faults_injected": f1 - f0 - sum(e[3] for e in window),
            "backoff_micros": b1 - b0 - sum(e[4] for e in window),
        }


@dataclass
class PopulationScanResult:
    """What :meth:`ScanExecutor.scan_population` hands back: the merged
    store and serial-exact stats, plus the snapshot context the CLI
    needs for committing and reporting."""

    store: SnapshotStore
    stats: ScanStats
    instant: Instant
    month_index: int
    build_stats: Dict[str, int]
    #: per-worker peak RSS (KiB, ``ru_maxrss``); empty for the
    #: in-process backends.
    worker_peak_rss_kib: List[int] = field(default_factory=list)


class ScanExecutor:
    """Runs one month's scan through a configurable backend.

    The executor owns the scan-scoped cache lifecycle: it turns on the
    SMTP probe memo cache for the duration of one snapshot scan and
    flushes it afterwards (a probe result is only valid while the
    world does not mutate), and it flushes the PKIX chain cache at
    scan start so memory stays bounded across a long campaign.
    """

    def __init__(self, *, backend: str = "serial", jobs: int = 1,
                 trace: bool = False, profile: bool = False,
                 progress: Optional[Callable[[ProgressEvent], None]] = None,
                 heartbeat_every: int = 0):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if jobs > 1 and backend == "serial":
            raise ValueError(
                "the serial backend ignores jobs; pass jobs=1 or pick "
                "the 'threaded' or 'process' backend")
        self.backend = backend
        self.jobs = jobs
        #: With tracing on, every scan leaves its merged
        #: :class:`~repro.trace.TraceReport` on :attr:`last_trace`.
        self.trace_enabled = trace
        self.last_trace: Optional[TraceReport] = None
        #: With profiling on, every scan leaves its merged wall-clock
        #: :class:`~repro.obs.profile.ProfileReport` on
        #: :attr:`last_profile`.
        self.profile_enabled = profile
        self.last_profile: Optional[ProfileReport] = None
        #: Progress callback: receives
        #: :class:`~repro.obs.progress.ProgressEvent` heartbeats while
        #: a scan runs (thread-safe under the threaded backend).
        self.progress = progress
        self.heartbeat_every = heartbeat_every

    def scan(self, world: World, domains: Iterable[str], month_index: int,
             store: Optional[SnapshotStore] = None,
             instant: Optional[Instant] = None,
             ) -> tuple[SnapshotStore, ScanStats]:
        """Scan *domains* in *world*, returning the store and stats."""
        if self.backend == "process":
            raise ValueError(
                "the process backend materialises per-shard worlds from "
                "a population and cannot scan a pre-built world; use "
                "ScanExecutor.scan_population()")
        store = store if store is not None else SnapshotStore()
        instant = instant if instant is not None else world.now()
        shards = partition_domains(domains, self.jobs)
        tracker = self._new_tracker(shards, month_index, instant)

        resolver = world.resolver
        probe = world.smtp_probe
        probe_was_cached = probe.cache_enabled
        probe.cache_enabled = True
        probe.flush_cache()
        flush_chain_cache()

        before = self._counters(world)
        started = time.perf_counter()
        try:
            if self.backend == "threaded" and len(shards) > 1:
                scanners = self._scan_threaded(world, shards, month_index,
                                               instant, store, tracker)
            else:
                scanner = Scanner(world, tracer=self._new_tracer(),
                                  profiler=self._new_profiler())
                scanner.scan_all(
                    [d for shard in shards for d in shard],
                    month_index, store, instant,
                    on_domain=tracker.domain_done if tracker else None)
                if tracker is not None:
                    tracker.shard_done()
                scanners = [scanner]
        finally:
            probe.flush_cache()
            probe.cache_enabled = probe_was_cached
            if tracker is not None:
                tracker.finish()
        elapsed = time.perf_counter() - started

        if self.trace_enabled:
            self.last_trace = TraceReport.merge(
                [s.tracer for s in scanners if s.tracer is not None],
                instant.epoch_seconds)
        if self.profile_enabled:
            self.last_profile = ProfileReport.merge(
                [s.profiler for s in scanners if s.profiler is not None])

        after = self._counters(world)
        deltas = {name: after[name] - before[name] for name in after}
        # Backoff is tracked in integer microseconds end to end and
        # only converted to seconds here, so the serial, threaded and
        # process backends all derive the float the same way — exact
        # equality across backends, no float-subtraction residue.
        backoff_micros = deltas.pop("retry_backoff_micros")
        stats = ScanStats(
            backend=self.backend, jobs=self.jobs, months=1,
            domains_scanned=sum(len(shard) for shard in shards),
            scan_seconds=elapsed,
            policy_fetches=sum(s.policy_fetches for s in scanners),
            transient_domains=sum(s.transient_domains for s in scanners),
            retry_backoff_seconds=backoff_micros / 1_000_000,
            **deltas,
        )
        return store, stats

    def scan_population(self, population: PopulationConfig,
                        month_index: Optional[int] = None, *,
                        fault_seed: Optional[int] = None,
                        fault_rate: float = 0.2) -> PopulationScanResult:
        """Materialise and scan one month of *population*.

        The population-level entry point, supported by every backend
        and the only one the process backend offers (its workers build
        their own shard-scoped worlds, so there is no pre-built world
        to hand it).  ``month_index`` defaults to the final scan month;
        with ``fault_seed`` a seeded
        :class:`~repro.netsim.network.FaultPlan` is installed after the
        world is built (faults perturb scans, never deployments) — in
        the process backend each worker installs the identical plan, so
        fault decisions agree across shards by construction.
        """
        timeline = EcosystemTimeline(TimelineConfig(population))
        if month_index is None:
            month_index = len(timeline.scan_instants) - 1
        if self.backend == "process":
            return self._scan_process(timeline, month_index,
                                      fault_seed=fault_seed,
                                      fault_rate=fault_rate)
        build_started = time.perf_counter()
        materialized = timeline.materialize(month_index)
        build_seconds = time.perf_counter() - build_started
        if fault_seed is not None:
            materialized.world.network.install_fault_plan(
                FaultPlan.seeded(seed=fault_seed, rate=fault_rate))
        store, stats = self.scan(
            materialized.world, materialized.deployed.keys(), month_index,
            instant=materialized.instant)
        stats.world_build_seconds = build_seconds
        return PopulationScanResult(
            store=store, stats=stats, instant=materialized.instant,
            month_index=month_index, build_stats=materialized.build_stats)

    def _scan_process(self, timeline: EcosystemTimeline, month_index: int,
                      *, fault_seed: Optional[int],
                      fault_rate: float) -> PopulationScanResult:
        """Fan one month out over spawn workers and merge the streams.

        Each worker materialises shard ``(i, n)`` of the population,
        scans it, and returns the month's shard JSONL (the on-disk
        interchange format) plus its counters and
        :class:`ShardScanJournal`.  The parent digest-verifies every
        shard, parses and merges the stores in shard order, and folds
        the counters back to serial-exact totals through
        :meth:`_merge_process_stats`.
        """
        instant = timeline.scan_instants[month_index]
        week = timeline.week_of(instant)
        adopted = [plan.name for plan in timeline.all_plans()
                   if plan.adopted_by_week(week)]
        # partition_names clamps the shard count to the domain count,
        # so worker i's slice here is exactly the shard the worker's
        # own materialisation keeps.
        slices = partition_names(adopted, self.jobs)
        shard_count = len(slices)

        tracker: Optional[ProgressTracker] = None
        if self.progress is not None:
            tracker = ProgressTracker(
                self.progress, month_index=month_index,
                backend=self.backend,
                domains_total=sum(len(s) for s in slices),
                shards_total=shard_count,
                virtual_epoch=instant.epoch_seconds,
                heartbeat_every=self.heartbeat_every)

        population_data = population_to_dict(timeline.config.population)
        payloads = [{
            "population": population_data,
            "month_index": month_index,
            "shard_index": index,
            "shard_count": shard_count,
            "fault_seed": fault_seed,
            "fault_rate": fault_rate,
            "trace": self.trace_enabled,
            "profile": self.profile_enabled,
        } for index in range(shard_count)]

        context = multiprocessing.get_context("spawn")
        manager = queue = drain = stop = None
        if tracker is not None:
            # A plain mp.Queue cannot ride through ProcessPoolExecutor
            # initargs; a Manager proxy queue can.
            manager = context.Manager()
            queue = manager.Queue()
            stop = threading.Event()
            drain = threading.Thread(target=_drain_progress,
                                     args=(queue, tracker, stop),
                                     daemon=True)
            drain.start()
        started = time.perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=shard_count,
                                     mp_context=context,
                                     initializer=_worker_init,
                                     initargs=(queue,)) as pool:
                results = list(pool.map(_process_scan_worker, payloads))
        finally:
            if tracker is not None:
                stop.set()
                drain.join()
                tracker.finish()
            if manager is not None:
                manager.shutdown()
        elapsed = time.perf_counter() - started

        store = SnapshotStore()
        for result in results:
            text = result["shard_text"]
            if shard_digest(text) != result["shard_digest"]:
                raise RuntimeError(
                    f"process scan: shard {result['shard_index']} JSONL "
                    f"digest mismatch (corrupted in transit)")
            store.merge(SnapshotStore.from_rows(
                json.loads(line) for line in text.splitlines()))
        build_stats = results[0]["build_stats"]
        for result in results[1:]:
            if result["build_stats"] != build_stats:
                raise RuntimeError(
                    "process scan: workers disagree on build churn "
                    f"({build_stats} vs {result['build_stats']}); "
                    "shard materialisation is nondeterministic")

        stats, corrections = self._merge_process_stats(
            results, elapsed, shard_count)
        if self.trace_enabled:
            report = TraceReport.merge(
                [r["tracer"] for r in results if r["tracer"] is not None],
                instant.epoch_seconds)
            # Cross-worker duplicated work inflates the summed trace
            # counters exactly like the legacy counters; overwrite the
            # affected keys with the corrected serial-exact values (a
            # zero means serial would never have created the key).
            # Histograms keep per-execution observations — documented
            # as execution-shaped, not serial-shaped.
            for key, value in corrections.items():
                if value:
                    report.metrics.counters[key] = value
                else:
                    report.metrics.counters.pop(key, None)
            self.last_trace = report
        if self.profile_enabled:
            self.last_profile = ProfileReport.merge(
                [r["profiler"] for r in results
                 if r["profiler"] is not None])
        return PopulationScanResult(
            store=store, stats=stats, instant=instant,
            month_index=month_index, build_stats=dict(build_stats),
            worker_peak_rss_kib=[r["peak_rss_kib"] for r in results])

    def _merge_process_stats(self, results: List[dict], elapsed: float,
                             shard_count: int
                             ) -> tuple[ScanStats, Dict[str, int]]:
        """Fold per-worker counters into serial-exact totals.

        Per-domain work (domains, policy fetches, per-domain DNS and
        probe requests) partitions exactly across shards and just
        sums.  Memoized work re-executed by several workers is
        corrected by ``(multiplicity - 1) x cost`` using the shard
        journals: live DNS queries by cache key, settled probe
        executions by hostname, PKIX validations by the union of
        validation-cache keys.  All arithmetic is integer, so the
        result is independent of worker count and merge order; the
        consistency checks raise on any cross-worker disagreement,
        which would mean a worker's execution was *not* the byte-
        identical replay the determinism invariant promises.
        """
        dns_mult: Dict[str, int] = {}
        dns_info: Dict[str, Tuple[bool, int, int, int]] = {}
        neg_live_sum = 0
        for result in results:
            seen: set = set()
            for key, negative, retries, faults, backoff in \
                    result["dns_journal"]:
                if key in seen:
                    raise RuntimeError(
                        f"process scan: {key!r} live-queried twice in "
                        f"shard {result['shard_index']} (cache entry "
                        "lost mid-scan?)")
                seen.add(key)
                info = (bool(negative), retries, faults, backoff)
                previous = dns_info.setdefault(key, info)
                if previous != info:
                    raise RuntimeError(
                        f"process scan: shards disagree on the cost of "
                        f"DNS query {key!r}: {previous} vs {info}")
                dns_mult[key] = dns_mult.get(key, 0) + 1
                if negative:
                    neg_live_sum += 1

        probe_mult: Dict[str, int] = {}
        probe_info: Dict[str, Dict[str, int]] = {}
        for result in results:
            for name, cost in result["probe_journal"].items():
                previous = probe_info.setdefault(name, cost)
                if previous != cost:
                    raise RuntimeError(
                        f"process scan: shards disagree on the cost of "
                        f"probe {name!r}: {previous} vs {cost}")
                probe_mult[name] = probe_mult.get(name, 0) + 1

        pkix_union: set = set()
        for result in results:
            keys = {tuple(key) for key in result["pkix_keys"]}
            if len(keys) != result["counters"]["pkix_validations"]:
                raise RuntimeError(
                    f"process scan: shard {result['shard_index']} "
                    f"reports {result['counters']['pkix_validations']} "
                    f"validations but {len(keys)} distinct cache keys")
            pkix_union |= keys

        def total(name: str) -> int:
            return sum(result["counters"][name] for result in results)

        def dns_extra(index: int) -> int:
            return sum((mult - 1) * dns_info[key][index]
                       for key, mult in dns_mult.items())

        def probe_extra(name: str) -> int:
            return sum((mult - 1) * probe_info[host][name]
                       for host, mult in probe_mult.items())

        dns_queries = total("dns_queries") - sum(
            mult - 1 for mult in dns_mult.values())
        dns_requests = (total("dns_queries") + total("dns_cache_hits")
                        - probe_extra("dns_requests"))
        dns_cache_hits = dns_requests - dns_queries
        neg_requests = (total("dns_negative_cache_hits") + neg_live_sum
                        - probe_extra("neg_requests"))
        neg_live = sum(1 for info in dns_info.values() if info[0])
        dns_negative_cache_hits = neg_requests - neg_live

        smtp_probes = total("smtp_probes") - sum(
            mult - 1 for mult in probe_mult.values())
        smtp_probe_cache_hits = (total("smtp_probes")
                                 + total("smtp_probe_cache_hits")
                                 - smtp_probes)

        pkix_validations = len(pkix_union)
        pkix_requests = (total("pkix_validations")
                         + total("pkix_cache_hits")
                         - probe_extra("pkix_requests"))
        pkix_cache_hits = pkix_requests - pkix_validations

        connect_retries = (total("connect_retries") - dns_extra(1)
                           - probe_extra("connect_retries"))
        faults_injected = (total("faults_injected") - dns_extra(2)
                           - probe_extra("faults_injected"))
        backoff_micros = (total("retry_backoff_micros") - dns_extra(3)
                          - probe_extra("backoff_micros"))

        corrections = {
            "dns.queries": dns_queries,
            "dns.cache_hits": dns_cache_hits,
            "dns.negative_cache_hits": dns_negative_cache_hits,
            "smtp.probes": smtp_probes,
            "smtp.cache_hits": smtp_probe_cache_hits,
            "pkix.validations": pkix_validations,
            "pkix.cache_hits": pkix_cache_hits,
            "net.connect_retries": connect_retries,
            "net.faults_injected": faults_injected,
            "net.backoff_micros": backoff_micros,
        }
        for name, value in corrections.items():
            if value < 0:
                raise RuntimeError(
                    f"process scan: merged counter {name} went negative "
                    f"({value}); the shard journals over-corrected")

        stats = ScanStats(
            backend=self.backend, jobs=shard_count, months=1,
            domains_scanned=sum(r["domains_scanned"] for r in results),
            world_build_seconds=max(
                result["build_seconds"] for result in results),
            scan_seconds=elapsed,
            dns_queries=dns_queries,
            dns_cache_hits=dns_cache_hits,
            dns_negative_cache_hits=dns_negative_cache_hits,
            policy_fetches=sum(r["policy_fetches"] for r in results),
            smtp_probes=smtp_probes,
            smtp_probe_cache_hits=smtp_probe_cache_hits,
            pkix_validations=pkix_validations,
            pkix_cache_hits=pkix_cache_hits,
            connect_retries=connect_retries,
            faults_injected=faults_injected,
            retry_backoff_seconds=backoff_micros / 1_000_000,
            transient_domains=sum(
                r["transient_domains"] for r in results),
        )
        return stats, corrections

    def _scan_threaded(self, world: World, shards: Sequence[List[str]],
                       month_index: int, instant: Instant,
                       store: SnapshotStore,
                       tracker: Optional[ProgressTracker] = None,
                       ) -> List[Scanner]:
        """One Scanner per shard; merge shard stores in shard order."""
        scanners = [Scanner(world, tracer=self._new_tracer(),
                            profiler=self._new_profiler())
                    for _ in shards]
        shard_stores = [SnapshotStore() for _ in shards]

        def scan_shard(scanner: Scanner, shard: List[str],
                       shard_store: SnapshotStore) -> None:
            scanner.scan_all(
                shard, month_index, shard_store, instant,
                on_domain=tracker.domain_done if tracker else None)
            if tracker is not None:
                tracker.shard_done()

        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            futures = [
                pool.submit(scan_shard, scanner, shard, shard_store)
                for scanner, shard, shard_store
                in zip(scanners, shards, shard_stores)
            ]
            for future in futures:
                future.result()
        for shard_store in shard_stores:
            store.merge(shard_store)
        return scanners

    def _new_tracer(self) -> Optional[Tracer]:
        return Tracer() if self.trace_enabled else None

    def _new_profiler(self) -> Optional[StageProfiler]:
        return StageProfiler() if self.profile_enabled else None

    def _new_tracker(self, shards: Sequence[List[str]], month_index: int,
                     instant: Instant) -> Optional[ProgressTracker]:
        if self.progress is None:
            return None
        return ProgressTracker(
            self.progress, month_index=month_index, backend=self.backend,
            domains_total=sum(len(shard) for shard in shards),
            shards_total=len(shards),
            virtual_epoch=instant.epoch_seconds,
            heartbeat_every=self.heartbeat_every)

    @staticmethod
    def _counters(world: World) -> Dict[str, int | float]:
        pkix = chain_cache_stats()
        return {
            "dns_queries": world.resolver.query_count,
            "dns_cache_hits": world.resolver.cache_hits,
            "dns_negative_cache_hits": world.resolver.negative_cache_hits,
            "smtp_probes": world.smtp_probe.probes_performed,
            "smtp_probe_cache_hits": world.smtp_probe.cache_hits,
            "pkix_validations": int(pkix["validations"]),
            "pkix_cache_hits": int(pkix["cache_hits"]),
            "connect_retries": world.network.retried_connects,
            "faults_injected": world.network.faults_injected,
            "retry_backoff_micros": world.network.backoff_micros,
        }


# ---------------------------------------------------------------------------
# The process backend's worker side.  Everything here is module-level so
# the ``spawn`` start method can pickle it by reference; the payload and
# result are plain dicts of picklable data (plus the worker's Tracer /
# StageProfiler, which are lock-free plain-data objects by design).
# ---------------------------------------------------------------------------

#: Set by :func:`_worker_init` in each worker process; ``None`` when the
#: parent runs without a progress callback.
_PROGRESS_QUEUE: Any = None

#: Domains per progress message.  One queue message per domain would
#: make the Manager proxy round-trip the dominant per-domain cost;
#: batching keeps heartbeats cheap and the tracker's ``advance`` still
#: emits on every crossed heartbeat boundary.
_PROGRESS_BATCH = 32


def _worker_init(progress_queue: Any) -> None:
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = progress_queue


def _drain_progress(queue: Any, tracker: ProgressTracker,
                    stop: threading.Event) -> None:
    """Parent-side thread: feed worker heartbeats into the tracker.

    Runs until *stop* is set **and** the queue is drained, so batches
    enqueued just before worker exit still land in the final counts.
    """
    while True:
        try:
            kind, value = queue.get(timeout=0.1)
        except Empty:
            if stop.is_set():
                return
            continue
        except (EOFError, OSError):  # manager torn down under us
            return
        if kind == "domains":
            tracker.advance(value)
        else:
            tracker.shard_done()


def _peak_rss_kib() -> int:
    """This process's peak RSS in KiB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _process_scan_worker(payload: dict) -> dict:
    """One shard worker: build the shard's world, scan it, stream back.

    The worker rebuilds the timeline from the population config (cheap
    relative to deployment), materialises **only its shard** of the
    world — every adopted plan is still deployed and immediately
    undeployed when out-of-shard, so allocation order, certificate
    issuance and ACME cache warmth match a serial build byte for byte —
    installs the same seeded fault plan the serial scan would, scans
    its slice, and returns the month's shard JSONL plus counters and
    the :class:`ShardScanJournal` the parent merges with.
    """
    month_index = payload["month_index"]
    shard = (payload["shard_index"], payload["shard_count"])

    build_started = time.perf_counter()
    timeline = timeline_from_population(payload["population"])
    materialized = timeline.materialize(month_index, shard=shard)
    build_seconds = time.perf_counter() - build_started

    world = materialized.world
    if payload["fault_seed"] is not None:
        world.network.install_fault_plan(FaultPlan.seeded(
            seed=payload["fault_seed"], rate=payload["fault_rate"]))

    journal = ShardScanJournal(world)
    world.resolver.journal = journal
    probe = world.smtp_probe
    probe.journal = journal
    probe.cache_enabled = True
    probe.flush_cache()
    flush_chain_cache()

    queue = _PROGRESS_QUEUE
    pending = 0

    def on_domain(domain: str) -> None:
        nonlocal pending
        pending += 1
        if pending >= _PROGRESS_BATCH:
            queue.put(("domains", pending))
            pending = 0

    domains = sorted(materialized.deployed)
    store = SnapshotStore()
    tracer = Tracer() if payload["trace"] else None
    profiler = StageProfiler() if payload["profile"] else None
    scanner = Scanner(world, tracer=tracer, profiler=profiler)

    before = ScanExecutor._counters(world)
    scan_started = time.perf_counter()
    scanner.scan_all(domains, month_index, store, materialized.instant,
                     on_domain=on_domain if queue is not None else None)
    scan_seconds = time.perf_counter() - scan_started
    after = ScanExecutor._counters(world)
    probe.flush_cache()

    if queue is not None:
        if pending:
            queue.put(("domains", pending))
        queue.put(("shard", 1))

    text = month_shard_text(store, month_index)
    return {
        "shard_index": payload["shard_index"],
        "domains_scanned": len(domains),
        "shard_text": text,
        "shard_digest": shard_digest(text),
        "counters": {name: after[name] - before[name] for name in after},
        "policy_fetches": scanner.policy_fetches,
        "transient_domains": scanner.transient_domains,
        "dns_journal": journal.dns_log,
        "probe_journal": journal.probe_costs,
        "pkix_keys": chain_cache_keys(),
        "build_stats": materialized.build_stats,
        "build_seconds": build_seconds,
        "scan_seconds": scan_seconds,
        "peak_rss_kib": _peak_rss_kib(),
        "tracer": tracer,
        "profiler": profiler,
    }
