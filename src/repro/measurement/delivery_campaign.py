"""Campaign-scale message delivery under MTA-STS enforcement.

The scanner measures recipient deployments; this module exercises the
workload MTA-STS actually protects — high-volume sending.  A
:func:`run_delivery_campaign` enqueues a configurable workload
(thousands of sender domains x messages each) against one materialised
scan month, drives every sender's retrying :class:`~repro.smtp.queue.
MailQueue` under the shared virtual clock, and applies per-delivery
MTA-STS enforcement through each sender's RFC 8461
:class:`~repro.core.cache.PolicyCache` (fetch → proactive refresh →
``max_age`` expiry, TOFU semantics).  Sender behaviour follows the
paper's §6.2 taxonomy via
:func:`~repro.measurement.senderside.synthesize_sender_population`:
~93% purely opportunistic TLS, MTA-STS validators, DANE validators,
and the Postfix-milter cohort that wrongly prefers MTA-STS over DANE.

Determinism is the design centre, mirroring the scan pipeline:

* **wave barriers** — the campaign advances the clock only between
  *waves*.  Within a wave every queue attempt happens at one frozen
  instant, so each delivery outcome is a pure function of (sender
  profile, message, instant) and thread interleavings cannot matter;
* **coordinated admission** — a single-threaded coordinator decides
  which (sender, seq) messages enter the queues each wave,
  round-robin over canonically sorted senders up to the global
  ``backpressure`` bound, so wave membership is backend-independent;
* **batched wake-ups** — between waves the clock jumps to the minimum
  of every queue's :meth:`~repro.smtp.queue.MailQueue.next_wakeup`,
  rounded up to ``wakeup_seconds`` so thousands of queues coalesce
  onto shared wake-up instants instead of each demanding a clock stop;
* **per-sender counters only** — the byte-identity surface (ledger
  rows, per-wave metrics, health findings) is built exclusively from
  integers derived inside one sender's lane; shared world counters
  (DNS, faults) are reported in :class:`DeliveryStats` but excluded
  from :meth:`DeliveryStats.comparable`.

The serial and threaded backends therefore produce **byte-identical
delivery ledgers** (canonical JSONL, one row per finalised message),
metric feeds, and health reports — with and without a seeded
:class:`~repro.netsim.network.FaultPlan`, whose transient connect
faults flow into queue retries via the attempt-ordinal passthrough.

State is durable and resumable following the ``store_io`` manifest
protocol: each wave commits a ``wave-XXXX.jsonl`` shard (sha256 in the
manifest) plus a checkpoint of every lane's workload cursor, pending
queue entries, and serialised policy cache; the manifest write is the
commit point, and a resumed campaign replays to the byte-identical
ledger a single run would have written.

With ``tlsrpt=True`` the campaign additionally runs the full RFC 8460
reporting pipeline: every lane's sender feeds a per-lane
:class:`~repro.core.reporting.ReportCollector` (policy fetch errors,
certificate failures, plaintext downgrades, successes), the
coordinator closes each collector's window at virtual-day boundaries
(and once more when the message workload drains), and finished reports
travel through the simulated world to each recipient's published
``rua`` endpoints — ``mailto:`` through a second per-lane
:class:`~repro.smtp.queue.MailQueue` over the lane's protocol-only
transport (so report delivery itself faces the fault layer and
retries; RFC 8460 §3 forbids gating report mail on the very policies
being reported on), ``https:`` through injected
:class:`~repro.core.reporting.ReportInbox` collectors.  After the
campaign a mailbox sweep over the canonically sorted recipient world
feeds a :class:`~repro.core.reporting.ReportAggregator` and a
:class:`~repro.obs.tlsrpt_monitor.TlsRptMonitor`, whose received
report set, window JSONL, and health findings are byte-identical
between backends, clean and fault-seeded.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.clock import DAY, Clock, Duration, Instant
from repro.core.cache import PolicyCache
from repro.core.dane import DaneValidator
from repro.core.fetch import PolicyFetcher
from repro.core.refresh import RefreshDaemon
from repro.core.reporting import ReportAggregator, ReportCollector
from repro.core.sender import MtaStsSender, SenderPolicyConfig
from repro.core.tlsrpt import ResultType, TlsRptReport, lookup_tlsrpt
from repro.ecosystem.population import PopulationConfig, partition_names
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.errors import StoreCorruption
from repro.fsutil import atomic_write_text, ensure_dir, read_text
from repro.measurement.senderside import (
    SenderProfile, synthesize_sender_population,
)
from repro.measurement.store_io import MANIFEST_NAME, shard_digest
from repro.netsim.network import FaultPlan
from repro.obs.monitor import DeliveryMonitor, DeliveryThresholds, WaveRecord
from repro.obs.progress import ProgressTracker
from repro.obs.tlsrpt_monitor import TlsRptMonitor, TlsRptThresholds
from repro.smtp.delivery import DeliveryStatus, Message, SendingMta
from repro.smtp.queue import MailQueue, QueueEntry, QueueOutcome
from repro.smtp.server import SMTP_PORT
from repro.trace import MetricsRegistry

__all__ = [
    "DELIVERY_SCHEMA_VERSION", "DELIVERY_KIND",
    "DeliveryCampaignConfig", "DeliveryStats", "DeliveryResult",
    "run_delivery_campaign", "read_delivery_manifest",
    "load_delivery_ledger",
]

#: Manifest schema for delivery state dirs (independent of the scan
#: store's version; both currently 1).
DELIVERY_SCHEMA_VERSION = 1
#: The manifest ``kind`` tag that tells a delivery state dir apart
#: from a scan-snapshot one.
DELIVERY_KIND = "delivery-campaign"

import random as _random


@dataclass
class DeliveryCampaignConfig:
    """Everything that determines a delivery campaign's outcome.

    The config is the identity of a campaign: two runs with equal
    configs produce byte-identical ledgers regardless of backend, and
    a resume refuses a state dir committed under a different config.
    """

    scale: float = 0.02            # recipient world scale
    seed: int = 11                 # recipient population seed
    month_index: int = 3           # which scan month to materialise
    senders: int = 120             # sender-domain count (§6.2: 2,394)
    messages_per_sender: int = 4
    sender_seed: int = 20230201    # §6.2 population seed
    backpressure: int = 10_000     # global in-flight bound
    wakeup_seconds: int = 900      # wake-up batching granularity
    fault_seed: Optional[int] = None
    fault_rate: float = 0.2
    #: Run the RFC 8460 reporting pipeline alongside delivery (daily
    #: collector windows, report transport, mailbox-sweep ingestion).
    tlsrpt: bool = False

    def __post_init__(self) -> None:
        if self.senders < 1:
            raise ValueError("senders must be >= 1")
        if self.messages_per_sender < 1:
            raise ValueError("messages_per_sender must be >= 1")
        if self.backpressure < 1:
            raise ValueError("backpressure must be >= 1")
        if self.wakeup_seconds < 1:
            raise ValueError("wakeup_seconds must be >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")

    @property
    def total_messages(self) -> int:
        return self.senders * self.messages_per_sender

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DeliveryCampaignConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in (data or {}).items()
                      if key in known})


@dataclass
class DeliveryStats:
    """Integer campaign totals plus wall-clock throughput.

    :meth:`comparable` strips everything that may legitimately differ
    between backends or runs — backend/jobs labels, wall-clock timings,
    and the *shared-world* counters (DNS, connects, faults), whose
    attribution between concurrent lanes is interleaving-dependent even
    though the per-lane decisions are not.
    """

    backend: str = "serial"
    jobs: int = 1
    scale: float = 0.0
    seed: int = 0
    month_index: int = 0
    senders: int = 0
    messages: int = 0
    waves: int = 0
    delivered: int = 0
    delivered_plaintext: int = 0
    bounced: int = 0
    attempts: int = 0
    queue_depth_peak: int = 0
    reports_generated: int = 0
    reports_delivered: int = 0
    reports_bounced: int = 0
    reports_received: int = 0
    report_attempts: int = 0
    reports_missing_endpoint: int = 0
    dns_queries: int = 0
    connects: int = 0
    faults_injected: int = 0
    world_build_seconds: float = 0.0
    deliver_seconds: float = 0.0

    _NON_DETERMINISTIC = (
        "backend", "jobs", "dns_queries", "connects", "faults_injected",
        "world_build_seconds", "deliver_seconds",
    )

    @property
    def messages_per_second(self) -> float:
        if self.deliver_seconds <= 0.0:
            return 0.0
        return self.messages / self.deliver_seconds

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["messages_per_second"] = self.messages_per_second
        return data

    def comparable(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name not in self._NON_DETERMINISTIC}


@dataclass
class DeliveryResult:
    """One finished (or resumed-to-finish) delivery campaign."""

    config: DeliveryCampaignConfig
    stats: DeliveryStats
    #: canonical JSONL — one compact sorted-key row per finalised
    #: message, grouped by wave, sorted by (sender, seq) within a wave
    ledger_text: str
    monitor: DeliveryMonitor
    total_registry: MetricsRegistry
    #: Received TLSRPT reports (mailbox sweep, canonically sorted) —
    #: empty unless the campaign ran with ``tlsrpt=True``.
    tlsrpt_reports: List[TlsRptReport] = field(default_factory=list)
    tlsrpt_monitor: Optional[TlsRptMonitor] = None
    tlsrpt_aggregator: Optional[ReportAggregator] = None

    @property
    def ledger_digest(self) -> str:
        return shard_digest(self.ledger_text)

    @property
    def tlsrpt_reports_jsonl(self) -> str:
        """Canonical JSONL of the received report set — one compact
        sorted-key report per line, the cross-backend identity
        surface."""
        return "".join(report.to_canonical_json() + "\n"
                       for report in self.tlsrpt_reports)

    def health(self):
        return self.monitor.health()


# ---------------------------------------------------------------------------
# Sender lanes
# ---------------------------------------------------------------------------

class _SenderLane:
    """One sender domain's private delivery machinery.

    Everything a lane mutates — queue, cache, wave counters — is owned
    by exactly one shard worker per wave, so lanes need no locks; the
    barrier merges their integer counters, which is order-independent.
    """

    def __init__(self, profile: SenderProfile, world,
                 recipients: Sequence[str],
                 config: DeliveryCampaignConfig):
        self.profile = profile
        self.identity = profile.identity
        self.total = config.messages_per_sender
        self.next_seq = 0
        # The workload is a pure function of (campaign seed, sender
        # identity): backends and resumes always agree on message seq
        # -> recipient.
        rng = _random.Random(f"deliver:{config.seed}:{self.identity}")
        self.recipients = [recipients[rng.randrange(len(recipients))]
                           for _ in range(self.total)]
        fetcher = PolicyFetcher(world.resolver, world.https_client)
        sender_config = SenderPolicyConfig(
            validate_mta_sts=profile.validates_mta_sts,
            validate_dane=profile.validates_dane,
            prefer_mta_sts_over_dane=profile.prefers_sts_over_dane,
            require_pkix_always=profile.require_pkix)
        dane = DaneValidator(world.resolver, world.dnssec)
        self.collector: Optional[ReportCollector] = None
        if config.tlsrpt:
            self.collector = ReportCollector(
                self.identity, f"tlsrpt@{self.identity}", world.clock)
        self.sender = MtaStsSender(
            self.identity, world.network, world.resolver,
            world.trust_store, world.clock, fetcher,
            config=sender_config, dane=dane, reporter=self.collector,
            record_events=False)
        self.sender._mta.opportunistic_tls = profile.uses_tls
        self.refresh = RefreshDaemon(self.sender.cache, fetcher,
                                     world.clock)
        self.queue = MailQueue(self.sender, world.clock,
                               capacity=config.backpressure,
                               on_attempt=self._on_attempt)
        self.report_queue: Optional[MailQueue] = None
        if config.tlsrpt:
            # Reports ride a dedicated protocol-only transport: RFC 8460
            # §3 — report delivery must not be gated on the policies it
            # reports on — but the fault layer still applies, so report
            # mail can fail and retry like any other.  The lane's
            # ``sender._mta`` would NOT do: the MTA-STS sender installs
            # its security gate (and reporter hooks) on that transport,
            # so report deliveries to a broken recipient would tally
            # fresh failures into the very collector being flushed —
            # each daily window would mint a new report about the
            # previous report's delivery, and the campaign would never
            # drain.
            report_mta = SendingMta(
                self.identity, world.network, world.resolver,
                world.trust_store, world.clock)
            report_mta.opportunistic_tls = profile.uses_tls
            self.report_queue = MailQueue(report_mta, world.clock,
                                          on_attempt=self._on_report_attempt)
        self._resolver = world.resolver
        self._clock = world.clock
        self._mech_by_seq: Dict[object, str] = {}
        self._wave_counters: Dict[str, int] = {}
        self._cache_stores_seen = 0
        self._cache_hits_seen = 0

    # -- per-attempt observation --------------------------------------

    def _bump(self, key: str, value: int = 1) -> None:
        self._wave_counters[key] = self._wave_counters.get(key, 0) + value

    def _on_attempt(self, entry: QueueEntry, attempt) -> None:
        self._bump("deliver.attempts")
        if attempt.status is DeliveryStatus.REFUSED_BY_POLICY:
            self._bump("deliver.refused_attempts")
        if attempt.delivered:
            self._mech_by_seq[entry.tag] = self.sender.last_mechanism
        if (self.collector is not None
                and attempt.status is DeliveryStatus.DELIVERED_PLAINTEXT):
            # The sender's reporter hooks cover policy-fetch and PKIX
            # failures; the plaintext downgrade is only visible here,
            # via the per-MX attempt trail.
            mx_hostname = next(
                (mx.mx_hostname for mx in attempt.attempts
                 if mx.connected and not mx.starttls), "")
            self.collector.record_failure(
                entry.message.recipient_domain,
                ResultType.STARTTLS_NOT_SUPPORTED,
                mx_hostname=mx_hostname,
                detail="delivered without STARTTLS")

    def _on_report_attempt(self, entry: QueueEntry, attempt) -> None:
        self._bump("tlsrpt.attempts")

    # -- one wave ------------------------------------------------------

    def run_wave(self, selected: Sequence[int], now: Instant,
                 *, flush_reports: bool = False,
                 https_inboxes: Optional[Dict[str, object]] = None,
                 ) -> Tuple[List[dict], Dict[str, int],
                            List[TlsRptReport]]:
        """Refresh the cache, submit this wave's admissions, retry
        everything due (messages and reports), optionally close the
        reporting window, and return (finalised rows, counter deltas,
        reports generated this wave)."""
        # In tlsrpt mode the refresher only runs while the lane still
        # has message work: bounced reports retry for up to five
        # virtual days past the last message, and keeping every lane's
        # policy cache warm through that tail is thousands of pointless
        # re-fetches per campaign.  (Without tlsrpt the campaign ends
        # at the last message wave, so the gate changes nothing.)
        if (self.report_queue is None or selected
                or any(entry.active for entry in self.queue.entries)):
            for result in self.refresh.run_once():
                self._bump("policy.refresh_"
                           + result.action.replace("-", "_"))
        for seq in selected:
            message = Message(f"mailer@{self.identity}",
                              f"user{seq:05d}@{self.recipients[seq]}")
            self.queue.submit(message, tag=seq)
            self._bump("deliver.submitted")
        self.queue.run_due()

        reports: List[TlsRptReport] = []
        if self.report_queue is not None:
            if flush_reports:
                reports = self._flush_reports(https_inboxes or {})
            self.report_queue.run_due()
            still_pending: List[QueueEntry] = []
            for entry in self.report_queue.entries:
                if entry.active:
                    still_pending.append(entry)
                elif entry.outcome is QueueOutcome.DELIVERED:
                    self._bump("tlsrpt.delivered")
                else:
                    self._bump("tlsrpt.bounced")
            self.report_queue.entries = still_pending

        rows: List[dict] = []
        active: List[QueueEntry] = []
        for entry in self.queue.entries:
            if entry.active:
                active.append(entry)
                continue
            # Finalised entries leave the queue now: queue memory stays
            # bounded by in-flight count, not total campaign volume.
            if entry.outcome is QueueOutcome.DELIVERED:
                self._bump("deliver.delivered")
                if entry.last_status is DeliveryStatus.DELIVERED_PLAINTEXT:
                    self._bump("deliver.delivered_plaintext")
                mechanism = self._mech_by_seq.pop(entry.tag, "")
                if mechanism:
                    self._bump(f"mech.{mechanism}")
            else:
                self._bump("deliver.bounced")
                mechanism = ""
            rows.append({
                "attempts": entry.attempts,
                "completed": now.epoch_seconds,
                "enqueued": entry.enqueued_at.epoch_seconds,
                "history": [status.value for status in entry.history],
                "mechanism": mechanism,
                "outcome": entry.outcome.value,
                "recipient": entry.message.recipient,
                "sender": self.identity,
                "seq": entry.tag,
                "status": (entry.last_status.value
                           if entry.last_status is not None else ""),
            })
        self.queue.entries = active

        cache = self.sender.cache
        stores = cache.store_count - self._cache_stores_seen
        hits = cache.hit_count - self._cache_hits_seen
        if stores:
            self._bump("policy.cache_stores", stores)
        if hits:
            self._bump("policy.cache_hits", hits)
        self._cache_stores_seen = cache.store_count
        self._cache_hits_seen = cache.hit_count

        counters = self._wave_counters
        self._wave_counters = {}
        return rows, counters, reports

    # -- TLSRPT window flush -------------------------------------------

    def _flush_reports(self, https_inboxes: Dict[str, object]
                       ) -> List[TlsRptReport]:
        """Close the collector's window and hand every finished report
        to the recipient's published ``rua`` endpoints."""
        assert self.collector is not None
        assert self.report_queue is not None
        reports = self.collector.close_window()
        for report in reports:
            self._bump("tlsrpt.generated")
            record = lookup_tlsrpt(self._resolver, report.policy_domain)
            if record is None:
                self._bump("tlsrpt.no_endpoint")
                continue
            body = report.to_canonical_json()
            for endpoint in record.rua:
                if endpoint.startswith("mailto:"):
                    self.report_queue.submit(
                        Message(f"tlsrpt@{self.identity}",
                                endpoint[len("mailto:"):], body=body),
                        tag=report.report_id)
                    self._bump("tlsrpt.enqueued")
                elif endpoint.startswith("https://"):
                    inbox = https_inboxes.get(endpoint)
                    if inbox is not None and inbox.submit(body):
                        self._bump("tlsrpt.https_submitted")
                    else:
                        self._bump("tlsrpt.https_unreachable")
                else:
                    self._bump("tlsrpt.endpoint_unsupported")
        return reports

    # -- checkpoint / resume -------------------------------------------

    def has_state(self) -> bool:
        return (self.next_seq > 0 or bool(self.queue.entries)
                or len(self.sender.cache) > 0)

    def checkpoint(self) -> dict:
        return {
            "next_seq": self.next_seq,
            "cache": self.sender.cache.to_dict(),
            "pending": [{
                "attempts": entry.attempts,
                "enqueued_at": entry.enqueued_at.epoch_seconds,
                "next_attempt_at": entry.next_attempt_at.epoch_seconds,
                "history": [status.value for status in entry.history],
                "recipient": entry.message.recipient,
                "seq": entry.tag,
            } for entry in self.queue.entries if entry.active],
        }

    def restore(self, data: dict) -> None:
        self.next_seq = int(data.get("next_seq", 0))
        cache = PolicyCache.from_dict(data.get("cache") or {}, self._clock)
        self.sender.cache = cache
        self.refresh._cache = cache
        self._cache_stores_seen = cache.store_count
        self._cache_hits_seen = cache.hit_count
        for pending in data.get("pending", ()):
            history = [DeliveryStatus(value)
                       for value in pending.get("history", ())]
            self.queue.entries.append(QueueEntry(
                message=Message(f"mailer@{self.identity}",
                                str(pending["recipient"])),
                enqueued_at=Instant(int(pending["enqueued_at"])),
                next_attempt_at=Instant(int(pending["next_attempt_at"])),
                attempts=int(pending["attempts"]),
                last_status=history[-1] if history else None,
                history=history,
                tag=int(pending["seq"])))


# ---------------------------------------------------------------------------
# Durable state (store_io manifest protocol)
# ---------------------------------------------------------------------------

def _wave_shard_name(wave: int) -> str:
    return f"wave-{wave:04d}.jsonl"


def read_delivery_manifest(state_dir: str) -> Optional[dict]:
    """The raw delivery manifest, or ``None`` when the directory holds
    no delivery state yet.  Damaged or foreign manifests raise
    :class:`StoreCorruption` — never treated as absent."""
    path = os.path.join(state_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        manifest = json.loads(read_text(path))
    except (OSError, ValueError) as exc:
        raise StoreCorruption(
            f"{MANIFEST_NAME}: unreadable ({exc})") from exc
    if not isinstance(manifest, dict):
        raise StoreCorruption(f"{MANIFEST_NAME}: not a JSON object")
    if manifest.get("kind") != DELIVERY_KIND:
        raise StoreCorruption(
            f"{MANIFEST_NAME}: kind {manifest.get('kind')!r} is not a "
            f"delivery campaign")
    if manifest.get("schema_version") != DELIVERY_SCHEMA_VERSION:
        raise StoreCorruption(
            f"{MANIFEST_NAME}: unsupported schema_version "
            f"{manifest.get('schema_version')!r} "
            f"(expected {DELIVERY_SCHEMA_VERSION})")
    return manifest


def _load_wave_shard(state_dir: str, entry: dict) -> str:
    """One committed wave's verified shard text."""
    shard = str(entry.get("shard", ""))
    path = os.path.join(state_dir, shard)
    if not os.path.exists(path):
        raise StoreCorruption(f"{shard}: shard missing")
    text = read_text(path)
    if shard_digest(text) != entry.get("sha256"):
        raise StoreCorruption(f"{shard}: digest mismatch")
    if text.count("\n") != int(entry.get("rows", -1)):
        raise StoreCorruption(f"{shard}: row count mismatch")
    return text


def load_delivery_ledger(state_dir: str) -> str:
    """The full verified ledger text of a committed delivery state dir
    (the concatenation of every wave shard, in wave order)."""
    manifest = read_delivery_manifest(state_dir)
    if manifest is None:
        raise StoreCorruption(
            f"{state_dir}: no delivery campaign state ({MANIFEST_NAME} "
            f"missing)")
    waves = sorted(manifest.get("waves", ()),
                   key=lambda entry: int(entry.get("wave", 0)))
    return "".join(_load_wave_shard(state_dir, entry) for entry in waves)


def _commit_wave(state_dir: str, config: DeliveryCampaignConfig,
                 committed: List[dict], wave: int, now: Instant,
                 wave_text: str, record: WaveRecord,
                 lanes: Sequence[_SenderLane]) -> None:
    """Durably commit one finished wave: shard first, manifest second
    (the manifest is the commit point, exactly as ``store_io`` commits
    scan months)."""
    state_dir = ensure_dir(state_dir)
    shard = _wave_shard_name(wave)
    atomic_write_text(os.path.join(state_dir, shard), wave_text)
    committed.append({
        "wave": wave, "date": record.date, "shard": shard,
        "sha256": shard_digest(wave_text),
        "rows": wave_text.count("\n"),
        "clock": now.epoch_seconds,
        "metrics": record.metrics.to_dict(),
    })
    manifest = {
        "schema_version": DELIVERY_SCHEMA_VERSION,
        "kind": DELIVERY_KIND,
        "config": config.to_dict(),
        "waves": committed,
        "checkpoint": {
            "clock": now.epoch_seconds,
            "lanes": {lane.identity: lane.checkpoint()
                      for lane in lanes if lane.has_state()},
        },
    }
    atomic_write_text(os.path.join(state_dir, MANIFEST_NAME),
                      json.dumps(manifest, sort_keys=True,
                                 separators=(",", ":")))


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------

def _sweep_tlsrpt_reports(world, https_inboxes: Optional[Dict[str, object]],
                          ) -> Tuple[List[TlsRptReport], int]:
    """Collect every TLSRPT report the world received.

    Walks every registered SMTP listener's mailbox (deterministic
    endpoint order; provider-shared MX hosts included, which per-domain
    handles would miss) for ``tls-reports@`` mail plus any injected
    HTTPS inboxes, parses the bodies (counting malformed ones), and
    returns the reports in canonical (policy domain, reporter, report
    id) order — the same byte-identity ordering regardless of delivery
    backend or the interleaving of report mail."""
    parsed: List[TlsRptReport] = []
    malformed = 0
    for listener in world.network.listeners():
        if listener.port != SMTP_PORT:
            continue
        for stored in getattr(listener.app, "mailbox", ()):
            if not stored.recipient.startswith("tls-reports@"):
                continue
            try:
                parsed.append(TlsRptReport.from_json(stored.body))
            except (KeyError, ValueError):
                malformed += 1
    for endpoint in sorted(https_inboxes or {}):
        inbox = https_inboxes[endpoint]
        parsed.extend(getattr(inbox, "received", ()))
    parsed.sort(key=lambda r: (r.policy_domain, r.organization_name,
                               r.report_id))
    return parsed, malformed


def _resolve_jobs(jobs: int, lanes: int) -> int:
    if jobs <= 0:
        jobs = min(8, os.cpu_count() or 1)
    return max(1, min(jobs, lanes))


def run_delivery_campaign(config: DeliveryCampaignConfig, *,
                          backend: str = "serial", jobs: int = 0,
                          progress: Optional[Callable] = None,
                          thresholds: Optional[DeliveryThresholds] = None,
                          metrics_jsonl_path: Optional[str] = None,
                          state_dir: Optional[str] = None,
                          resume: bool = False,
                          max_waves: Optional[int] = None,
                          tlsrpt_thresholds: Optional[
                              TlsRptThresholds] = None,
                          tlsrpt_https_inboxes: Optional[
                              Dict[str, object]] = None,
                          ) -> DeliveryResult:
    """Run (or resume) one delivery campaign to completion.

    ``backend="serial"`` processes every sender lane on the caller's
    thread; ``"threaded"`` cuts the lanes into ``jobs`` canonical-order
    shards (:func:`~repro.ecosystem.population.partition_names`) worked
    by a thread pool.  Both produce byte-identical ledgers, metric
    feeds, and health reports.

    With *state_dir*, every wave is durably committed; ``resume=True``
    continues a previously committed campaign from its checkpoint (the
    config must match the manifest's).  *max_waves* stops after that
    many additional waves — with a state dir this emulates a crash at
    a wave boundary, the case the resume tests replay.
    """
    if backend not in ("serial", "threaded"):
        raise ValueError(f"unknown delivery backend {backend!r}")
    if config.tlsrpt and state_dir is not None:
        raise ValueError(
            "tlsrpt reporting does not support durable state dirs yet: "
            "received-report state (recipient mailboxes) is not part of "
            "the wave checkpoint")

    build_started = time.perf_counter()
    timeline = EcosystemTimeline(TimelineConfig(
        PopulationConfig(scale=config.scale, seed=config.seed)))
    snapshot = timeline.materialize(config.month_index)
    world = snapshot.world
    if config.fault_seed is not None:
        world.network.install_fault_plan(FaultPlan.seeded(
            seed=config.fault_seed, rate=config.fault_rate))
    recipients = sorted(snapshot.deployed)
    if not recipients:
        raise ValueError(
            f"month {config.month_index} at scale {config.scale} has no "
            f"deployed recipient domains")
    profiles = synthesize_sender_population(config.senders,
                                            seed=config.sender_seed)
    lanes = sorted((_SenderLane(profile, world, recipients, config)
                    for profile in profiles),
                   key=lambda lane: lane.identity)
    world_build_seconds = time.perf_counter() - build_started

    monitor = DeliveryMonitor(thresholds, backpressure=config.backpressure,
                              jsonl_path=metrics_jsonl_path)
    ledger_parts: List[str] = []
    committed: List[dict] = []
    start_wave = 0
    finalized_before = 0

    if state_dir is not None and resume:
        manifest = read_delivery_manifest(state_dir)
        if manifest is not None:
            if manifest.get("config") != config.to_dict():
                raise StoreCorruption(
                    f"{MANIFEST_NAME}: state dir belongs to a different "
                    f"campaign config")
            waves = sorted(manifest.get("waves", ()),
                           key=lambda entry: int(entry.get("wave", 0)))
            for entry in waves:
                text = _load_wave_shard(state_dir, entry)
                ledger_parts.append(text)
                finalized_before += int(entry["rows"])
                committed.append(dict(entry))
                monitor.add_record(WaveRecord(
                    int(entry["wave"]), str(entry.get("date", "")),
                    MetricsRegistry.from_dict(entry.get("metrics") or {})))
            checkpoint = manifest.get("checkpoint") or {}
            target = Instant(int(checkpoint.get(
                "clock", world.clock.now().epoch_seconds)))
            if target > world.clock.now():
                world.clock.advance_to(target)
            lane_states = checkpoint.get("lanes") or {}
            for lane in lanes:
                if lane.identity in lane_states:
                    lane.restore(lane_states[lane.identity])
            start_wave = len(waves)

    if backend == "threaded":
        shard_count = _resolve_jobs(jobs, len(lanes))
    else:
        shard_count = 1
    lane_by_id = {lane.identity: lane for lane in lanes}
    shards = [[lane_by_id[identity] for identity in slice_]
              for slice_ in partition_names(
                  [lane.identity for lane in lanes], shard_count)]

    total = config.total_messages
    tracker = None
    if progress is not None:
        tracker = ProgressTracker(
            progress, month_index=config.month_index,
            backend=f"deliver-{backend}", domains_total=total,
            shards_total=0, virtual_epoch=snapshot.instant.epoch_seconds)
        if finalized_before:
            tracker.advance(finalized_before)

    granularity = Duration(config.wakeup_seconds)
    deliver_started = time.perf_counter()
    pool = (ThreadPoolExecutor(max_workers=len(shards))
            if backend == "threaded" and len(shards) > 1 else None)
    wave = start_wave
    # TLSRPT window scheduling: the coordinator decides, single-
    # threaded, which waves close the collectors' daily windows, so
    # window membership is backend-independent like wave membership.
    next_flush = world.clock.now() + DAY
    final_flush_done = not config.tlsrpt
    generated_reports: List[TlsRptReport] = []
    try:
        while True:
            now = world.clock.now()
            in_flight = sum(lane.queue.pending_count() for lane in lanes)
            reports_in_flight = (
                sum(lane.report_queue.pending_count() for lane in lanes)
                if config.tlsrpt else 0)
            backlog = [lane for lane in lanes
                       if lane.next_seq < lane.total]
            # Coordinated admission: round-robin one message per sender
            # over canonical order until the global bound is reached.
            # Membership is decided here, single-threaded, so the wave
            # is identical no matter how lanes are sharded.
            selected: Dict[str, List[int]] = {}
            budget = config.backpressure - in_flight
            while budget > 0 and backlog:
                still_hungry: List[_SenderLane] = []
                for lane in backlog:
                    if budget <= 0:
                        still_hungry.append(lane)
                        continue
                    selected.setdefault(lane.identity,
                                        []).append(lane.next_seq)
                    lane.next_seq += 1
                    budget -= 1
                    if lane.next_seq < lane.total:
                        still_hungry.append(lane)
                backlog = still_hungry
            messages_done = not selected and in_flight == 0
            if messages_done and final_flush_done and not reports_in_flight:
                break
            flush = config.tlsrpt and (
                now >= next_flush
                or (messages_done and not final_flush_done))

            def run_shard(shard_lanes: List[_SenderLane]
                          ) -> Tuple[List[dict], Dict[str, int],
                                     List[TlsRptReport]]:
                rows: List[dict] = []
                counters: Dict[str, int] = {}
                reports: List[TlsRptReport] = []
                for lane in shard_lanes:
                    lane_rows, lane_counters, lane_reports = lane.run_wave(
                        selected.get(lane.identity, ()), now,
                        flush_reports=flush,
                        https_inboxes=tlsrpt_https_inboxes)
                    rows.extend(lane_rows)
                    reports.extend(lane_reports)
                    for key, value in lane_counters.items():
                        counters[key] = counters.get(key, 0) + value
                return rows, counters, reports

            if pool is not None:
                outputs = list(pool.map(run_shard, shards))
            else:
                outputs = [run_shard(shard) for shard in shards]

            # Barrier: merge per-lane integers, emit the wave's ledger
            # block in canonical (sender, seq) order.
            rows = [row for shard_rows, _, _ in outputs
                    for row in shard_rows]
            rows.sort(key=lambda row: (row["sender"], row["seq"]))
            registry = MetricsRegistry()
            for _, counters, _ in outputs:
                for key in sorted(counters):
                    registry.count(key, counters[key])
            if flush:
                wave_reports = [report for _, _, shard_reports in outputs
                                for report in shard_reports]
                wave_reports.sort(
                    key=lambda r: (r.organization_name, r.report_id))
                generated_reports.extend(wave_reports)
                if messages_done:
                    final_flush_done = True
                while next_flush <= now:
                    next_flush = next_flush + DAY
            queue_depth = sum(lane.queue.pending_count() for lane in lanes)
            registry.count("deliver.queue_depth", queue_depth)
            registry.count("deliver.finalized", len(rows))
            for row in rows:
                row["wave"] = wave
            wave_text = "".join(
                json.dumps(row, sort_keys=True, separators=(",", ":"))
                + "\n" for row in rows)
            ledger_parts.append(wave_text)
            record = monitor.observe_wave(wave, now.date_string(), registry)
            if tracker is not None and rows:
                tracker.advance(len(rows))
            if state_dir is not None:
                _commit_wave(state_dir, config, committed, wave, now,
                             wave_text, record, lanes)
            wave += 1
            if max_waves is not None and wave - start_wave >= max_waves:
                break

            if backlog and queue_depth < config.backpressure:
                # Capacity freed up at this very instant — admit more
                # before touching the clock.
                continue
            wakeups = [wakeup for lane in lanes
                       if (wakeup := lane.queue.next_wakeup(
                           granularity=granularity)) is not None]
            if config.tlsrpt:
                wakeups.extend(
                    wakeup for lane in lanes
                    if (wakeup := lane.report_queue.next_wakeup(
                        granularity=granularity)) is not None)
                if wakeups and not final_flush_done:
                    # Day boundaries are wake-ups too: the clock never
                    # jumps over a window close without flushing it
                    # (after any flush wave next_flush > now, so this
                    # never drags the clock backwards).
                    wakeups.append(next_flush)
            if not wakeups:
                if backlog:
                    continue
                if not final_flush_done:
                    # Message work drained this very wave; loop once
                    # more so the coordinator closes the final
                    # reporting window at the current instant.
                    continue
                break
            target = min(wakeups)
            if target > world.clock.now():
                world.clock.advance_to(target)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    deliver_seconds = time.perf_counter() - deliver_started
    if tracker is not None:
        tracker.finish()

    tlsrpt_reports: List[TlsRptReport] = []
    tlsrpt_aggregator: Optional[ReportAggregator] = None
    tlsrpt_monitor: Optional[TlsRptMonitor] = None
    if config.tlsrpt:
        tlsrpt_reports, malformed = _sweep_tlsrpt_reports(
            world, tlsrpt_https_inboxes)
        tlsrpt_aggregator = ReportAggregator()
        for report in tlsrpt_reports:
            tlsrpt_aggregator.add(report)
        tlsrpt_aggregator.malformed = malformed
        tlsrpt_monitor = TlsRptMonitor(tlsrpt_thresholds)
        tlsrpt_monitor.observe_reports(tlsrpt_reports)

    total_registry = MetricsRegistry()
    for record in monitor.records:
        total_registry.merge(record.metrics)
    stats = DeliveryStats(
        backend=backend, jobs=len(shards), scale=config.scale,
        seed=config.seed, month_index=config.month_index,
        senders=config.senders, messages=total, waves=len(monitor.records),
        delivered=total_registry.get("deliver.delivered"),
        delivered_plaintext=total_registry.get("deliver.delivered_plaintext"),
        bounced=total_registry.get("deliver.bounced"),
        attempts=total_registry.get("deliver.attempts"),
        queue_depth_peak=max(
            (record.metrics.get("deliver.queue_depth")
             for record in monitor.records), default=0),
        reports_generated=total_registry.get("tlsrpt.generated"),
        reports_delivered=total_registry.get("tlsrpt.delivered"),
        reports_bounced=total_registry.get("tlsrpt.bounced"),
        reports_received=len(tlsrpt_reports),
        report_attempts=total_registry.get("tlsrpt.attempts"),
        reports_missing_endpoint=total_registry.get("tlsrpt.no_endpoint"),
        dns_queries=world.resolver.query_count,
        connects=world.network.connect_count,
        faults_injected=world.network.faults_injected,
        world_build_seconds=world_build_seconds,
        deliver_seconds=deliver_seconds)
    return DeliveryResult(config=config, stats=stats,
                          ledger_text="".join(ledger_parts),
                          monitor=monitor, total_registry=total_registry,
                          tlsrpt_reports=tlsrpt_reports,
                          tlsrpt_monitor=tlsrpt_monitor,
                          tlsrpt_aggregator=tlsrpt_aggregator)
