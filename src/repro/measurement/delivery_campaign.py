"""Campaign-scale message delivery under MTA-STS enforcement.

The scanner measures recipient deployments; this module exercises the
workload MTA-STS actually protects — high-volume sending.  A
:func:`run_delivery_campaign` enqueues a configurable workload
(thousands of sender domains x messages each) against one materialised
scan month, drives every sender's retrying :class:`~repro.smtp.queue.
MailQueue` under the shared virtual clock, and applies per-delivery
MTA-STS enforcement through each sender's RFC 8461
:class:`~repro.core.cache.PolicyCache` (fetch → proactive refresh →
``max_age`` expiry, TOFU semantics).  Sender behaviour follows the
paper's §6.2 taxonomy via
:func:`~repro.measurement.senderside.synthesize_sender_population`:
~93% purely opportunistic TLS, MTA-STS validators, DANE validators,
and the Postfix-milter cohort that wrongly prefers MTA-STS over DANE.

Determinism is the design centre, mirroring the scan pipeline:

* **wave barriers** — the campaign advances the clock only between
  *waves*.  Within a wave every queue attempt happens at one frozen
  instant, so each delivery outcome is a pure function of (sender
  profile, message, instant) and thread interleavings cannot matter;
* **coordinated admission** — a single-threaded coordinator decides
  which (sender, seq) messages enter the queues each wave,
  round-robin over canonically sorted senders up to the global
  ``backpressure`` bound, so wave membership is backend-independent;
* **batched wake-ups** — between waves the clock jumps to the minimum
  of every queue's :meth:`~repro.smtp.queue.MailQueue.next_wakeup`,
  rounded up to ``wakeup_seconds`` so thousands of queues coalesce
  onto shared wake-up instants instead of each demanding a clock stop;
* **per-sender counters only** — the byte-identity surface (ledger
  rows, per-wave metrics, health findings) is built exclusively from
  integers derived inside one sender's lane; shared world counters
  (DNS, faults) are reported in :class:`DeliveryStats` but excluded
  from :meth:`DeliveryStats.comparable`.

The serial and threaded backends therefore produce **byte-identical
delivery ledgers** (canonical JSONL, one row per finalised message),
metric feeds, and health reports — with and without a seeded
:class:`~repro.netsim.network.FaultPlan`, whose transient connect
faults flow into queue retries via the attempt-ordinal passthrough.

State is durable and resumable following the ``store_io`` manifest
protocol: each wave commits a ``wave-XXXX.jsonl`` shard (sha256 in the
manifest) plus a checkpoint of every lane's workload cursor, pending
queue entries, and serialised policy cache; the manifest write is the
commit point, and a resumed campaign replays to the byte-identical
ledger a single run would have written.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.clock import Clock, Duration, Instant
from repro.core.cache import PolicyCache
from repro.core.dane import DaneValidator
from repro.core.fetch import PolicyFetcher
from repro.core.refresh import RefreshDaemon
from repro.core.sender import MtaStsSender, SenderPolicyConfig
from repro.ecosystem.population import PopulationConfig, partition_names
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.errors import StoreCorruption
from repro.fsutil import atomic_write_text, ensure_dir, read_text
from repro.measurement.senderside import (
    SenderProfile, synthesize_sender_population,
)
from repro.measurement.store_io import MANIFEST_NAME, shard_digest
from repro.netsim.network import FaultPlan
from repro.obs.monitor import DeliveryMonitor, DeliveryThresholds, WaveRecord
from repro.obs.progress import ProgressTracker
from repro.smtp.delivery import DeliveryStatus, Message
from repro.smtp.queue import MailQueue, QueueEntry, QueueOutcome
from repro.trace import MetricsRegistry

__all__ = [
    "DELIVERY_SCHEMA_VERSION", "DELIVERY_KIND",
    "DeliveryCampaignConfig", "DeliveryStats", "DeliveryResult",
    "run_delivery_campaign", "read_delivery_manifest",
    "load_delivery_ledger",
]

#: Manifest schema for delivery state dirs (independent of the scan
#: store's version; both currently 1).
DELIVERY_SCHEMA_VERSION = 1
#: The manifest ``kind`` tag that tells a delivery state dir apart
#: from a scan-snapshot one.
DELIVERY_KIND = "delivery-campaign"

import random as _random


@dataclass
class DeliveryCampaignConfig:
    """Everything that determines a delivery campaign's outcome.

    The config is the identity of a campaign: two runs with equal
    configs produce byte-identical ledgers regardless of backend, and
    a resume refuses a state dir committed under a different config.
    """

    scale: float = 0.02            # recipient world scale
    seed: int = 11                 # recipient population seed
    month_index: int = 3           # which scan month to materialise
    senders: int = 120             # sender-domain count (§6.2: 2,394)
    messages_per_sender: int = 4
    sender_seed: int = 20230201    # §6.2 population seed
    backpressure: int = 10_000     # global in-flight bound
    wakeup_seconds: int = 900      # wake-up batching granularity
    fault_seed: Optional[int] = None
    fault_rate: float = 0.2

    def __post_init__(self) -> None:
        if self.senders < 1:
            raise ValueError("senders must be >= 1")
        if self.messages_per_sender < 1:
            raise ValueError("messages_per_sender must be >= 1")
        if self.backpressure < 1:
            raise ValueError("backpressure must be >= 1")
        if self.wakeup_seconds < 1:
            raise ValueError("wakeup_seconds must be >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")

    @property
    def total_messages(self) -> int:
        return self.senders * self.messages_per_sender

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DeliveryCampaignConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in (data or {}).items()
                      if key in known})


@dataclass
class DeliveryStats:
    """Integer campaign totals plus wall-clock throughput.

    :meth:`comparable` strips everything that may legitimately differ
    between backends or runs — backend/jobs labels, wall-clock timings,
    and the *shared-world* counters (DNS, connects, faults), whose
    attribution between concurrent lanes is interleaving-dependent even
    though the per-lane decisions are not.
    """

    backend: str = "serial"
    jobs: int = 1
    scale: float = 0.0
    seed: int = 0
    month_index: int = 0
    senders: int = 0
    messages: int = 0
    waves: int = 0
    delivered: int = 0
    delivered_plaintext: int = 0
    bounced: int = 0
    attempts: int = 0
    queue_depth_peak: int = 0
    dns_queries: int = 0
    connects: int = 0
    faults_injected: int = 0
    world_build_seconds: float = 0.0
    deliver_seconds: float = 0.0

    _NON_DETERMINISTIC = (
        "backend", "jobs", "dns_queries", "connects", "faults_injected",
        "world_build_seconds", "deliver_seconds",
    )

    @property
    def messages_per_second(self) -> float:
        if self.deliver_seconds <= 0.0:
            return 0.0
        return self.messages / self.deliver_seconds

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["messages_per_second"] = self.messages_per_second
        return data

    def comparable(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name not in self._NON_DETERMINISTIC}


@dataclass
class DeliveryResult:
    """One finished (or resumed-to-finish) delivery campaign."""

    config: DeliveryCampaignConfig
    stats: DeliveryStats
    #: canonical JSONL — one compact sorted-key row per finalised
    #: message, grouped by wave, sorted by (sender, seq) within a wave
    ledger_text: str
    monitor: DeliveryMonitor
    total_registry: MetricsRegistry

    @property
    def ledger_digest(self) -> str:
        return shard_digest(self.ledger_text)

    def health(self):
        return self.monitor.health()


# ---------------------------------------------------------------------------
# Sender lanes
# ---------------------------------------------------------------------------

class _SenderLane:
    """One sender domain's private delivery machinery.

    Everything a lane mutates — queue, cache, wave counters — is owned
    by exactly one shard worker per wave, so lanes need no locks; the
    barrier merges their integer counters, which is order-independent.
    """

    def __init__(self, profile: SenderProfile, world,
                 recipients: Sequence[str],
                 config: DeliveryCampaignConfig):
        self.profile = profile
        self.identity = profile.identity
        self.total = config.messages_per_sender
        self.next_seq = 0
        # The workload is a pure function of (campaign seed, sender
        # identity): backends and resumes always agree on message seq
        # -> recipient.
        rng = _random.Random(f"deliver:{config.seed}:{self.identity}")
        self.recipients = [recipients[rng.randrange(len(recipients))]
                           for _ in range(self.total)]
        fetcher = PolicyFetcher(world.resolver, world.https_client)
        sender_config = SenderPolicyConfig(
            validate_mta_sts=profile.validates_mta_sts,
            validate_dane=profile.validates_dane,
            prefer_mta_sts_over_dane=profile.prefers_sts_over_dane,
            require_pkix_always=profile.require_pkix)
        dane = DaneValidator(world.resolver, world.dnssec)
        self.sender = MtaStsSender(
            self.identity, world.network, world.resolver,
            world.trust_store, world.clock, fetcher,
            config=sender_config, dane=dane, record_events=False)
        self.sender._mta.opportunistic_tls = profile.uses_tls
        self.refresh = RefreshDaemon(self.sender.cache, fetcher,
                                     world.clock)
        self.queue = MailQueue(self.sender, world.clock,
                               capacity=config.backpressure,
                               on_attempt=self._on_attempt)
        self._clock = world.clock
        self._mech_by_seq: Dict[object, str] = {}
        self._wave_counters: Dict[str, int] = {}
        self._cache_stores_seen = 0
        self._cache_hits_seen = 0

    # -- per-attempt observation --------------------------------------

    def _bump(self, key: str, value: int = 1) -> None:
        self._wave_counters[key] = self._wave_counters.get(key, 0) + value

    def _on_attempt(self, entry: QueueEntry, attempt) -> None:
        self._bump("deliver.attempts")
        if attempt.status is DeliveryStatus.REFUSED_BY_POLICY:
            self._bump("deliver.refused_attempts")
        if attempt.delivered:
            self._mech_by_seq[entry.tag] = self.sender.last_mechanism

    # -- one wave ------------------------------------------------------

    def run_wave(self, selected: Sequence[int], now: Instant
                 ) -> Tuple[List[dict], Dict[str, int]]:
        """Refresh the cache, submit this wave's admissions, retry
        everything due, and return (finalised rows, counter deltas)."""
        for result in self.refresh.run_once():
            self._bump("policy.refresh_"
                       + result.action.replace("-", "_"))
        for seq in selected:
            message = Message(f"mailer@{self.identity}",
                              f"user{seq:05d}@{self.recipients[seq]}")
            self.queue.submit(message, tag=seq)
            self._bump("deliver.submitted")
        self.queue.run_due()

        rows: List[dict] = []
        active: List[QueueEntry] = []
        for entry in self.queue.entries:
            if entry.active:
                active.append(entry)
                continue
            # Finalised entries leave the queue now: queue memory stays
            # bounded by in-flight count, not total campaign volume.
            if entry.outcome is QueueOutcome.DELIVERED:
                self._bump("deliver.delivered")
                if entry.last_status is DeliveryStatus.DELIVERED_PLAINTEXT:
                    self._bump("deliver.delivered_plaintext")
                mechanism = self._mech_by_seq.pop(entry.tag, "")
                if mechanism:
                    self._bump(f"mech.{mechanism}")
            else:
                self._bump("deliver.bounced")
                mechanism = ""
            rows.append({
                "attempts": entry.attempts,
                "completed": now.epoch_seconds,
                "enqueued": entry.enqueued_at.epoch_seconds,
                "history": [status.value for status in entry.history],
                "mechanism": mechanism,
                "outcome": entry.outcome.value,
                "recipient": entry.message.recipient,
                "sender": self.identity,
                "seq": entry.tag,
                "status": (entry.last_status.value
                           if entry.last_status is not None else ""),
            })
        self.queue.entries = active

        cache = self.sender.cache
        stores = cache.store_count - self._cache_stores_seen
        hits = cache.hit_count - self._cache_hits_seen
        if stores:
            self._bump("policy.cache_stores", stores)
        if hits:
            self._bump("policy.cache_hits", hits)
        self._cache_stores_seen = cache.store_count
        self._cache_hits_seen = cache.hit_count

        counters = self._wave_counters
        self._wave_counters = {}
        return rows, counters

    # -- checkpoint / resume -------------------------------------------

    def has_state(self) -> bool:
        return (self.next_seq > 0 or bool(self.queue.entries)
                or len(self.sender.cache) > 0)

    def checkpoint(self) -> dict:
        return {
            "next_seq": self.next_seq,
            "cache": self.sender.cache.to_dict(),
            "pending": [{
                "attempts": entry.attempts,
                "enqueued_at": entry.enqueued_at.epoch_seconds,
                "next_attempt_at": entry.next_attempt_at.epoch_seconds,
                "history": [status.value for status in entry.history],
                "recipient": entry.message.recipient,
                "seq": entry.tag,
            } for entry in self.queue.entries if entry.active],
        }

    def restore(self, data: dict) -> None:
        self.next_seq = int(data.get("next_seq", 0))
        cache = PolicyCache.from_dict(data.get("cache") or {}, self._clock)
        self.sender.cache = cache
        self.refresh._cache = cache
        self._cache_stores_seen = cache.store_count
        self._cache_hits_seen = cache.hit_count
        for pending in data.get("pending", ()):
            history = [DeliveryStatus(value)
                       for value in pending.get("history", ())]
            self.queue.entries.append(QueueEntry(
                message=Message(f"mailer@{self.identity}",
                                str(pending["recipient"])),
                enqueued_at=Instant(int(pending["enqueued_at"])),
                next_attempt_at=Instant(int(pending["next_attempt_at"])),
                attempts=int(pending["attempts"]),
                last_status=history[-1] if history else None,
                history=history,
                tag=int(pending["seq"])))


# ---------------------------------------------------------------------------
# Durable state (store_io manifest protocol)
# ---------------------------------------------------------------------------

def _wave_shard_name(wave: int) -> str:
    return f"wave-{wave:04d}.jsonl"


def read_delivery_manifest(state_dir: str) -> Optional[dict]:
    """The raw delivery manifest, or ``None`` when the directory holds
    no delivery state yet.  Damaged or foreign manifests raise
    :class:`StoreCorruption` — never treated as absent."""
    path = os.path.join(state_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        manifest = json.loads(read_text(path))
    except (OSError, ValueError) as exc:
        raise StoreCorruption(
            f"{MANIFEST_NAME}: unreadable ({exc})") from exc
    if not isinstance(manifest, dict):
        raise StoreCorruption(f"{MANIFEST_NAME}: not a JSON object")
    if manifest.get("kind") != DELIVERY_KIND:
        raise StoreCorruption(
            f"{MANIFEST_NAME}: kind {manifest.get('kind')!r} is not a "
            f"delivery campaign")
    if manifest.get("schema_version") != DELIVERY_SCHEMA_VERSION:
        raise StoreCorruption(
            f"{MANIFEST_NAME}: unsupported schema_version "
            f"{manifest.get('schema_version')!r} "
            f"(expected {DELIVERY_SCHEMA_VERSION})")
    return manifest


def _load_wave_shard(state_dir: str, entry: dict) -> str:
    """One committed wave's verified shard text."""
    shard = str(entry.get("shard", ""))
    path = os.path.join(state_dir, shard)
    if not os.path.exists(path):
        raise StoreCorruption(f"{shard}: shard missing")
    text = read_text(path)
    if shard_digest(text) != entry.get("sha256"):
        raise StoreCorruption(f"{shard}: digest mismatch")
    if text.count("\n") != int(entry.get("rows", -1)):
        raise StoreCorruption(f"{shard}: row count mismatch")
    return text


def load_delivery_ledger(state_dir: str) -> str:
    """The full verified ledger text of a committed delivery state dir
    (the concatenation of every wave shard, in wave order)."""
    manifest = read_delivery_manifest(state_dir)
    if manifest is None:
        raise StoreCorruption(
            f"{state_dir}: no delivery campaign state ({MANIFEST_NAME} "
            f"missing)")
    waves = sorted(manifest.get("waves", ()),
                   key=lambda entry: int(entry.get("wave", 0)))
    return "".join(_load_wave_shard(state_dir, entry) for entry in waves)


def _commit_wave(state_dir: str, config: DeliveryCampaignConfig,
                 committed: List[dict], wave: int, now: Instant,
                 wave_text: str, record: WaveRecord,
                 lanes: Sequence[_SenderLane]) -> None:
    """Durably commit one finished wave: shard first, manifest second
    (the manifest is the commit point, exactly as ``store_io`` commits
    scan months)."""
    state_dir = ensure_dir(state_dir)
    shard = _wave_shard_name(wave)
    atomic_write_text(os.path.join(state_dir, shard), wave_text)
    committed.append({
        "wave": wave, "date": record.date, "shard": shard,
        "sha256": shard_digest(wave_text),
        "rows": wave_text.count("\n"),
        "clock": now.epoch_seconds,
        "metrics": record.metrics.to_dict(),
    })
    manifest = {
        "schema_version": DELIVERY_SCHEMA_VERSION,
        "kind": DELIVERY_KIND,
        "config": config.to_dict(),
        "waves": committed,
        "checkpoint": {
            "clock": now.epoch_seconds,
            "lanes": {lane.identity: lane.checkpoint()
                      for lane in lanes if lane.has_state()},
        },
    }
    atomic_write_text(os.path.join(state_dir, MANIFEST_NAME),
                      json.dumps(manifest, sort_keys=True,
                                 separators=(",", ":")))


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------

def _resolve_jobs(jobs: int, lanes: int) -> int:
    if jobs <= 0:
        jobs = min(8, os.cpu_count() or 1)
    return max(1, min(jobs, lanes))


def run_delivery_campaign(config: DeliveryCampaignConfig, *,
                          backend: str = "serial", jobs: int = 0,
                          progress: Optional[Callable] = None,
                          thresholds: Optional[DeliveryThresholds] = None,
                          metrics_jsonl_path: Optional[str] = None,
                          state_dir: Optional[str] = None,
                          resume: bool = False,
                          max_waves: Optional[int] = None
                          ) -> DeliveryResult:
    """Run (or resume) one delivery campaign to completion.

    ``backend="serial"`` processes every sender lane on the caller's
    thread; ``"threaded"`` cuts the lanes into ``jobs`` canonical-order
    shards (:func:`~repro.ecosystem.population.partition_names`) worked
    by a thread pool.  Both produce byte-identical ledgers, metric
    feeds, and health reports.

    With *state_dir*, every wave is durably committed; ``resume=True``
    continues a previously committed campaign from its checkpoint (the
    config must match the manifest's).  *max_waves* stops after that
    many additional waves — with a state dir this emulates a crash at
    a wave boundary, the case the resume tests replay.
    """
    if backend not in ("serial", "threaded"):
        raise ValueError(f"unknown delivery backend {backend!r}")

    build_started = time.perf_counter()
    timeline = EcosystemTimeline(TimelineConfig(
        PopulationConfig(scale=config.scale, seed=config.seed)))
    snapshot = timeline.materialize(config.month_index)
    world = snapshot.world
    if config.fault_seed is not None:
        world.network.install_fault_plan(FaultPlan.seeded(
            seed=config.fault_seed, rate=config.fault_rate))
    recipients = sorted(snapshot.deployed)
    if not recipients:
        raise ValueError(
            f"month {config.month_index} at scale {config.scale} has no "
            f"deployed recipient domains")
    profiles = synthesize_sender_population(config.senders,
                                            seed=config.sender_seed)
    lanes = sorted((_SenderLane(profile, world, recipients, config)
                    for profile in profiles),
                   key=lambda lane: lane.identity)
    world_build_seconds = time.perf_counter() - build_started

    monitor = DeliveryMonitor(thresholds, backpressure=config.backpressure,
                              jsonl_path=metrics_jsonl_path)
    ledger_parts: List[str] = []
    committed: List[dict] = []
    start_wave = 0
    finalized_before = 0

    if state_dir is not None and resume:
        manifest = read_delivery_manifest(state_dir)
        if manifest is not None:
            if manifest.get("config") != config.to_dict():
                raise StoreCorruption(
                    f"{MANIFEST_NAME}: state dir belongs to a different "
                    f"campaign config")
            waves = sorted(manifest.get("waves", ()),
                           key=lambda entry: int(entry.get("wave", 0)))
            for entry in waves:
                text = _load_wave_shard(state_dir, entry)
                ledger_parts.append(text)
                finalized_before += int(entry["rows"])
                committed.append(dict(entry))
                monitor.add_record(WaveRecord(
                    int(entry["wave"]), str(entry.get("date", "")),
                    MetricsRegistry.from_dict(entry.get("metrics") or {})))
            checkpoint = manifest.get("checkpoint") or {}
            target = Instant(int(checkpoint.get(
                "clock", world.clock.now().epoch_seconds)))
            if target > world.clock.now():
                world.clock.advance_to(target)
            lane_states = checkpoint.get("lanes") or {}
            for lane in lanes:
                if lane.identity in lane_states:
                    lane.restore(lane_states[lane.identity])
            start_wave = len(waves)

    if backend == "threaded":
        shard_count = _resolve_jobs(jobs, len(lanes))
    else:
        shard_count = 1
    lane_by_id = {lane.identity: lane for lane in lanes}
    shards = [[lane_by_id[identity] for identity in slice_]
              for slice_ in partition_names(
                  [lane.identity for lane in lanes], shard_count)]

    total = config.total_messages
    tracker = None
    if progress is not None:
        tracker = ProgressTracker(
            progress, month_index=config.month_index,
            backend=f"deliver-{backend}", domains_total=total,
            shards_total=0, virtual_epoch=snapshot.instant.epoch_seconds)
        if finalized_before:
            tracker.advance(finalized_before)

    granularity = Duration(config.wakeup_seconds)
    deliver_started = time.perf_counter()
    pool = (ThreadPoolExecutor(max_workers=len(shards))
            if backend == "threaded" and len(shards) > 1 else None)
    wave = start_wave
    try:
        while True:
            now = world.clock.now()
            in_flight = sum(lane.queue.pending_count() for lane in lanes)
            backlog = [lane for lane in lanes
                       if lane.next_seq < lane.total]
            # Coordinated admission: round-robin one message per sender
            # over canonical order until the global bound is reached.
            # Membership is decided here, single-threaded, so the wave
            # is identical no matter how lanes are sharded.
            selected: Dict[str, List[int]] = {}
            budget = config.backpressure - in_flight
            while budget > 0 and backlog:
                still_hungry: List[_SenderLane] = []
                for lane in backlog:
                    if budget <= 0:
                        still_hungry.append(lane)
                        continue
                    selected.setdefault(lane.identity,
                                        []).append(lane.next_seq)
                    lane.next_seq += 1
                    budget -= 1
                    if lane.next_seq < lane.total:
                        still_hungry.append(lane)
                backlog = still_hungry
            if not selected and in_flight == 0:
                break

            def run_shard(shard_lanes: List[_SenderLane]
                          ) -> Tuple[List[dict], Dict[str, int]]:
                rows: List[dict] = []
                counters: Dict[str, int] = {}
                for lane in shard_lanes:
                    lane_rows, lane_counters = lane.run_wave(
                        selected.get(lane.identity, ()), now)
                    rows.extend(lane_rows)
                    for key, value in lane_counters.items():
                        counters[key] = counters.get(key, 0) + value
                return rows, counters

            if pool is not None:
                outputs = list(pool.map(run_shard, shards))
            else:
                outputs = [run_shard(shard) for shard in shards]

            # Barrier: merge per-lane integers, emit the wave's ledger
            # block in canonical (sender, seq) order.
            rows = [row for shard_rows, _ in outputs for row in shard_rows]
            rows.sort(key=lambda row: (row["sender"], row["seq"]))
            registry = MetricsRegistry()
            for _, counters in outputs:
                for key in sorted(counters):
                    registry.count(key, counters[key])
            queue_depth = sum(lane.queue.pending_count() for lane in lanes)
            registry.count("deliver.queue_depth", queue_depth)
            registry.count("deliver.finalized", len(rows))
            for row in rows:
                row["wave"] = wave
            wave_text = "".join(
                json.dumps(row, sort_keys=True, separators=(",", ":"))
                + "\n" for row in rows)
            ledger_parts.append(wave_text)
            record = monitor.observe_wave(wave, now.date_string(), registry)
            if tracker is not None and rows:
                tracker.advance(len(rows))
            if state_dir is not None:
                _commit_wave(state_dir, config, committed, wave, now,
                             wave_text, record, lanes)
            wave += 1
            if max_waves is not None and wave - start_wave >= max_waves:
                break

            if backlog and queue_depth < config.backpressure:
                # Capacity freed up at this very instant — admit more
                # before touching the clock.
                continue
            wakeups = [wakeup for lane in lanes
                       if (wakeup := lane.queue.next_wakeup(
                           granularity=granularity)) is not None]
            if not wakeups:
                if not backlog:
                    break
                continue
            target = min(wakeups)
            if target > world.clock.now():
                world.clock.advance_to(target)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    deliver_seconds = time.perf_counter() - deliver_started
    if tracker is not None:
        tracker.finish()

    total_registry = MetricsRegistry()
    for record in monitor.records:
        total_registry.merge(record.metrics)
    stats = DeliveryStats(
        backend=backend, jobs=len(shards), scale=config.scale,
        seed=config.seed, month_index=config.month_index,
        senders=config.senders, messages=total, waves=len(monitor.records),
        delivered=total_registry.get("deliver.delivered"),
        delivered_plaintext=total_registry.get("deliver.delivered_plaintext"),
        bounced=total_registry.get("deliver.bounced"),
        attempts=total_registry.get("deliver.attempts"),
        queue_depth_peak=max(
            (record.metrics.get("deliver.queue_depth")
             for record in monitor.records), default=0),
        dns_queries=world.resolver.query_count,
        connects=world.network.connect_count,
        faults_injected=world.network.faults_injected,
        world_build_seconds=world_build_seconds,
        deliver_seconds=deliver_seconds)
    return DeliveryResult(config=config, stats=stats,
                          ledger_text="".join(ledger_parts),
                          monitor=monitor, total_registry=total_registry)
