"""Policy-delegation analysis (paper §5, Table 2).

Provider identification works exactly as in the paper: the CNAME
record on the ``mta-sts`` label names the hosting provider.  The
census counts customers per provider; the opt-out probe exercises a
provider's documented deprovisioning behaviour against a live world
and reports what a sender would experience.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.fetch import PolicyFetcher
from repro.dns.name import DnsName, effective_sld
from repro.ecosystem.providers import OptOutBehavior, PolicyHostProvider
from repro.ecosystem.world import World
from repro.errors import PolicyFetchStage
from repro.measurement.snapshots import DomainSnapshot


def identify_provider(snap: DomainSnapshot) -> Optional[str]:
    """The registrable domain of the policy-host CNAME target, if any."""
    if not snap.policy_host_cname:
        return None
    name = DnsName.try_parse(snap.policy_host_cname)
    if name is None:
        return None
    own = effective_sld(DnsName.parse(snap.domain))
    target = effective_sld(name)
    if target is None or (own is not None and target == own):
        return None
    return target.text


def delegation_census(snapshots: List[DomainSnapshot],
                      top: int = 8) -> List[dict]:
    """Table 2's left columns: the top policy hosting providers."""
    counts: Counter = Counter()
    pattern_examples: Dict[str, str] = {}
    for snap in snapshots:
        provider = identify_provider(snap)
        if provider is None:
            continue
        counts[provider] += 1
        pattern_examples.setdefault(provider, snap.policy_host_cname or "")
    rows = []
    for provider, count in counts.most_common(top):
        rows.append({"provider_sld": provider, "domains": count,
                     "cname_example": pattern_examples[provider]})
    return rows


@dataclass
class OptOutObservation:
    """What a sender experiences for an opted-out customer domain."""

    provider: str
    behavior: OptOutBehavior
    domain: str
    policy_resolves: bool = False       # canonical name still resolves
    cert_served: bool = False
    cert_valid: bool = False
    policy_body: Optional[str] = None
    fetch_stage: Optional[str] = None   # failed stage, None = HTTP 200
    policy_parse_ok: bool = False
    effective_mode: str = ""            # what senders end up honouring


def probe_opted_out(world: World, provider: PolicyHostProvider,
                    domain: str) -> OptOutObservation:
    """Fetch an opted-out customer's policy and characterise the result."""
    fetcher = PolicyFetcher(world.resolver, world.https_client)
    result = fetcher.fetch_policy(domain)
    observation = OptOutObservation(
        provider=provider.name, behavior=provider.opt_out, domain=domain)

    fetch = result.fetch
    if fetch is not None:
        observation.policy_resolves = (
            fetch.failed_stage is not PolicyFetchStage.DNS)
        observation.cert_served = fetch.certificate is not None
        observation.cert_valid = (
            fetch.certificate is not None
            and fetch.failed_stage is not PolicyFetchStage.TLS)
        observation.policy_body = fetch.body
        observation.fetch_stage = (fetch.failed_stage.value
                                   if fetch.failed_stage else None)
    if result.policy_check is not None:
        observation.policy_parse_ok = result.policy_check.valid
    if result.policy is not None:
        observation.effective_mode = result.policy.mode.value
    elif observation.fetch_stage is None and not observation.policy_parse_ok:
        # A parse failure on a fetched body is treated like mode=none
        # (the DMARCReport empty-file effect the paper describes).
        observation.effective_mode = "none"
    elif observation.fetch_stage is not None:
        # Unfetchable policy: senders fall back to opportunistic TLS —
        # or keep honouring a cached policy, the §2.6 hazard.
        observation.effective_mode = "unreachable"
    return observation


def table2_rows(census: List[dict],
                providers: Dict[str, PolicyHostProvider]) -> List[dict]:
    """Join the census with each provider's opt-out behaviour flags."""
    by_sld = {p.canonical_sld(): p for p in providers.values()}
    rows = []
    for entry in census:
        provider = by_sld.get(entry["provider_sld"])
        if provider is None:
            continue
        rows.append({
            "provider": provider.name,
            "cname_example": entry["cname_example"],
            "domains": entry["domains"],
            "email_hosting": provider.email_hosting_support,
            "optout_nxdomain": provider.opt_out is OptOutBehavior.NXDOMAIN,
            "optout_reissues_cert": provider.opt_out in (
                OptOutBehavior.REISSUE_CERT_STALE_POLICY,
                OptOutBehavior.REISSUE_CERT_EMPTY_POLICY),
            "optout_policy_update": {
                OptOutBehavior.NXDOMAIN: "-",
                OptOutBehavior.REISSUE_CERT_STALE_POLICY: "stale",
                OptOutBehavior.REISSUE_CERT_EMPTY_POLICY: "empty-file",
                OptOutBehavior.REJECT_MAIL_STALE_POLICY: "stale",
            }[provider.opt_out],
        })
    return rows
