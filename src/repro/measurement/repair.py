"""Remediation planning — the actionable half of the notifications.

The paper's disclosure campaign (§4.7) told operators *that* their
MTA-STS deployment was broken; this module derives *what to do about
it* from a scanned snapshot, producing prioritised
:class:`RepairAction` items per domain.  In the simulation the actions
are also executable: :func:`apply_repairs` performs the corresponding
infrastructure fixes on a deployed domain, closing the loop —
inject fault → scan → plan → apply → rescan clean.  That loop is the
strongest evidence the error taxonomy is faithful: every diagnosis
maps to a concrete, sufficient fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.matching import policy_covers_mx
from repro.core.policy import Policy, PolicyMode, render_policy
from repro.dns.name import DnsName, levenshtein
from repro.dns.records import ARecord, RRType
from repro.ecosystem.deployment import DeployedDomain
from repro.ecosystem.world import World
from repro.measurement.snapshots import DomainSnapshot
from repro.netsim.network import TcpBehavior
from repro.web.server import HTTPS_PORT


@dataclass(frozen=True)
class RepairAction:
    """One concrete fix, ordered by priority (lower = more urgent)."""

    priority: int
    component: str        # record | policy-host | policy | mx
    action: str           # machine-readable verb
    description: str      # operator-facing instruction

    def render(self) -> str:
        return (f"{self.priority}. [{self.component}] {self.description}")


def plan_repairs(snap: DomainSnapshot) -> List[RepairAction]:
    """Derive the fix list for one scanned domain."""
    actions: List[RepairAction] = []
    if not snap.sts_like:
        return actions

    if not snap.record_valid:
        actions.append(RepairAction(
            1, "record", "fix-record",
            f"replace the _mta-sts TXT record with a valid one "
            f"(current: {snap.txt_strings!r}); the id must be 1-32 "
            f"alphanumeric characters and exactly one record may begin "
            f"with v=STSv1"))

    stage = snap.policy_fetch_stage
    if stage == "dns":
        actions.append(RepairAction(
            1, "policy-host", "publish-policy-host-dns",
            f"publish an A/AAAA or CNAME record for "
            f"mta-sts.{snap.domain}; the policy host does not resolve"))
    elif stage == "tcp":
        actions.append(RepairAction(
            1, "policy-host", "open-https-port",
            "start (or unfirewall) the web server on TCP 443 of the "
            "policy host"))
    elif stage == "tls":
        actions.append(RepairAction(
            1, "policy-host", "fix-policy-host-certificate",
            f"obtain a publicly trusted certificate covering "
            f"mta-sts.{snap.domain} "
            f"(current failure: {snap.policy_tls_failure})"))
    elif stage == "http":
        actions.append(RepairAction(
            1, "policy-host", "serve-policy-file",
            f"serve the policy at "
            f"https://mta-sts.{snap.domain}/.well-known/mta-sts.txt "
            f"with HTTP 200 (currently {snap.policy_http_status})"))
    elif stage == "policy-syntax":
        actions.append(RepairAction(
            1, "policy", "fix-policy-syntax",
            f"repair the policy body "
            f"(errors: {snap.policy_syntax_errors})"))

    invalid_mx = [o for o in snap.mx_tls_capable if not o.cert_valid]
    for observation in invalid_mx:
        actions.append(RepairAction(
            2, "mx", "fix-mx-certificate",
            f"install a PKIX-valid certificate covering "
            f"{observation.hostname} "
            f"(current: {observation.failure_class})"))

    if not snap.consistent:
        suggestion = _suggest_patterns(snap)
        actions.append(RepairAction(
            2, "policy", "sync-mx-patterns",
            f"update the policy's mx patterns {snap.mx_patterns} to "
            f"match the actual MX records; suggested: {suggestion}"))

    return sorted(actions, key=lambda a: (a.priority, a.component))


#: RFC 8460 result types → the repair verb that addresses them.  Keys
#: are the enum *values* so the mapping stays importable without the
#: reporting module.
_VERDICT_ACTIONS = {
    "sts-policy-invalid": (
        1, "policy", "fix-policy-syntax",
        "repair the policy body; senders report sts-policy-invalid"),
    "sts-policy-fetch-error": (
        1, "policy-host", "serve-policy-file",
        "serve the policy file over HTTPS; senders report "
        "sts-policy-fetch-error"),
    "sts-webpki-invalid": (
        1, "policy-host", "fix-policy-host-certificate",
        "obtain a publicly trusted certificate for the policy host; "
        "senders report sts-webpki-invalid"),
    "certificate-host-mismatch": (
        2, "mx", "fix-mx-certificate",
        "install a certificate covering the MX hostname; senders "
        "report certificate-host-mismatch"),
    "certificate-expired": (
        2, "mx", "fix-mx-certificate",
        "renew the MX certificate; senders report certificate-expired"),
    "certificate-not-trusted": (
        2, "mx", "fix-mx-certificate",
        "install a publicly trusted MX certificate; senders report "
        "certificate-not-trusted"),
    "validation-failure": (
        2, "mx", "fix-mx-certificate",
        "re-provision the MX TLS configuration; senders report "
        "validation-failure"),
    "starttls-not-supported": (
        2, "mx", "fix-mx-certificate",
        "enable STARTTLS (and install a valid certificate) on the MX; "
        "senders report starttls-not-supported"),
}


def plan_repairs_from_verdict(verdicts) -> List[RepairAction]:
    """Derive repair actions from a TLSRPT verdict feed.

    *verdicts* is an iterable of
    :class:`repro.obs.tlsrpt_monitor.TlsRptVerdict` (anything with
    ``policy_domain`` / ``result_type`` / ``failed_sessions``).  This
    is the report-triggered half of the repair loop: operators act on
    what senders *told* them failed, no rescan required.  Actions are
    deduplicated per (domain, verb) and sorted like
    :func:`plan_repairs` output.
    """
    seen = set()
    actions: List[RepairAction] = []
    for verdict in verdicts:
        template = _VERDICT_ACTIONS.get(verdict.result_type.value)
        if template is None:
            continue
        priority, component, verb, description = template
        key = (verdict.policy_domain, verb)
        if key in seen:
            continue
        seen.add(key)
        actions.append(RepairAction(
            priority, component, verb,
            f"{verdict.policy_domain}: {description} "
            f"({verdict.failed_sessions} failed session(s))"))
    return sorted(actions, key=lambda a: (a.priority, a.component,
                                          a.description))


def _suggest_patterns(snap: DomainSnapshot) -> List[str]:
    """Suggested replacement patterns: the actual MX records, with a
    typo-aware hint when a pattern is one small edit away."""
    suggestions = list(dict.fromkeys(snap.mx_hostnames))
    for pattern in snap.mx_patterns:
        bare = pattern[2:] if pattern.startswith("*.") else pattern
        for mx in snap.mx_hostnames:
            if 0 < levenshtein(bare, mx, cap=3) <= 3:
                return suggestions    # the fix is the corrected spelling
    return suggestions


# ---------------------------------------------------------------------------
# Applying repairs inside the simulation
# ---------------------------------------------------------------------------

def apply_repairs(world: World, deployed: DeployedDomain,
                  actions: List[RepairAction],
                  snap: Optional[DomainSnapshot] = None) -> List[str]:
    """Execute *actions* against the deployed domain's infrastructure.

    Returns the list of action verbs applied.  Unknown verbs are
    skipped (callers may carry provider-side actions the domain owner
    cannot perform).
    """
    applied: List[str] = []
    for action in actions:
        handler = _APPLIERS.get(action.action)
        if handler is None:
            continue
        handler(world, deployed)
        applied.append(action.action)
    return applied


def _fix_record(world: World, deployed: DeployedDomain) -> None:
    deployed.set_record(f"v=STSv1; id=repair{world.now().epoch_seconds};")


def _publish_policy_host_dns(world: World,
                             deployed: DeployedDomain) -> None:
    host = DnsName.parse(f"mta-sts.{deployed.domain}")
    deployed.zone.remove(host, RRType.A)
    deployed.zone.remove(host, RRType.CNAME)
    server = _policy_server(deployed)
    deployed.zone.add(ARecord(host, 3600, server.ip))


def _open_https_port(world: World, deployed: DeployedDomain) -> None:
    server = _policy_server(deployed)
    world.network.set_behavior(server.ip, HTTPS_PORT, TcpBehavior.ACCEPT)


def _fix_policy_host_certificate(world: World,
                                 deployed: DeployedDomain) -> None:
    server = _policy_server(deployed)
    host = f"mta-sts.{deployed.domain}"
    server.tls.install(host, world.issue_cert([host]))


def _serve_policy_file(world: World, deployed: DeployedDomain) -> None:
    _rewrite_policy(world, deployed)


def _fix_policy_syntax(world: World, deployed: DeployedDomain) -> None:
    _rewrite_policy(world, deployed)


def _sync_mx_patterns(world: World, deployed: DeployedDomain) -> None:
    _rewrite_policy(world, deployed)


def _rewrite_policy(world: World, deployed: DeployedDomain) -> None:
    """Publish a fresh policy whose patterns equal the actual MX set."""
    base = deployed.spec.effective_policy()
    patterns = tuple(deployed.mx_record_hostnames())
    policy = Policy(version="STSv1", mode=base.mode,
                    max_age=base.max_age, mx_patterns=patterns)
    deployed.set_policy_text(render_policy(policy))


def _fix_mx_certificate(world: World, deployed: DeployedDomain) -> None:
    for host in deployed.mx_hosts:
        certificate = host.tls.select_certificate(host.hostname)
        from repro.pki.validation import validate_chain
        verdict = validate_chain(certificate, host.hostname,
                                 world.trust_store, world.now())
        if not verdict.valid:
            host.tls.install(host.hostname,
                             world.issue_cert([host.hostname]),
                             default=True)


def _policy_server(deployed: DeployedDomain):
    if deployed.policy_server is not None:
        return deployed.policy_server
    provider = deployed.spec.policy_provider
    if provider is None or provider.web_server is None:
        raise ValueError(f"{deployed.domain}: no policy server to repair")
    return provider.web_server


_APPLIERS = {
    "fix-record": _fix_record,
    "publish-policy-host-dns": _publish_policy_host_dns,
    "open-https-port": _open_https_port,
    "fix-policy-host-certificate": _fix_policy_host_certificate,
    "serve-policy-file": _serve_policy_file,
    "fix-policy-syntax": _fix_policy_syntax,
    "sync-mx-patterns": _sync_mx_patterns,
    "fix-mx-certificate": _fix_mx_certificate,
}
