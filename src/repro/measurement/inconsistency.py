"""Inconsistency classification (paper §4.4, Figure 8).

When a domain's policy ``mx`` patterns match none of its actual MX
records, the mismatch is attributed to exactly one of four causes, in
the paper's precedence order:

1. **typo** — some pattern is within Levenshtein distance 3 of an
   actual MX (and it is not merely a TLD swap);
2. **TLD mismatch** — a pattern equals an actual MX up to its
   top-level domain;
3. **3LD+ mismatch** — the registrable domain (eSLD) agrees but extra
   or different labels appear from the third label on (the classic
   case: the ``mta-sts`` label copied into the pattern);
4. **complete domain mismatch** — nothing meaningful overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.matching import policy_covers_mx
from repro.dns.name import DnsName, canonical_host, effective_sld, levenshtein
from repro.errors import MismatchClass
from repro.measurement.snapshots import DomainSnapshot

TYPO_MAX_DISTANCE = 3


@dataclass
class MismatchVerdict:
    mismatch: bool
    mismatch_class: Optional[MismatchClass] = None
    evidence: str = ""


def _strip_wildcard(pattern: str) -> str:
    return pattern[2:] if pattern.startswith("*.") else pattern


def _esld_text(hostname: str) -> str:
    name = DnsName.try_parse(hostname)
    if name is None:
        return ""
    sld = effective_sld(name)
    return sld.text if sld is not None else name.text


def _tld(hostname: str) -> str:
    return hostname.rsplit(".", 1)[-1] if "." in hostname else hostname


def classify_mismatch(mx_patterns: Sequence[str],
                      mx_hostnames: Sequence[str]) -> MismatchVerdict:
    """Classify the relationship between patterns and actual MX hosts."""
    # canonical_host (not .lower()) so the classes below agree with
    # policy_covers_mx about which spellings are the same host: lower()
    # keeps U+1E9E ẞ/ß intact while casefold maps both to "ss", the way
    # every other host comparison in the pipeline folds them.
    # A wildcard's "*." prefix passes through canonicalisation intact.
    patterns = [canonical for canonical in
                (canonical_host(p) for p in mx_patterns if p) if canonical]
    hosts = [canonical for canonical in
             (canonical_host(h) for h in mx_hostnames if h) if canonical]
    if not patterns or not hosts:
        return MismatchVerdict(False)
    if any(policy_covers_mx(patterns, h) for h in hosts):
        return MismatchVerdict(False)

    # 1. Typos: small edit distance between a pattern and a host, where
    #    the difference is not purely the TLD.  A wildcard pattern is
    #    compared against the part of the host it would have to match
    #    (the host minus its leftmost label).
    for pattern in patterns:
        bare = _strip_wildcard(pattern)
        wildcard = pattern.startswith("*.")
        for host in hosts:
            if _tld(bare) != _tld(host):
                continue    # TLD swaps are classified separately
            compare_to = host
            if wildcard and "." in host:
                compare_to = host.split(".", 1)[1]
            distance = levenshtein(bare, compare_to, cap=TYPO_MAX_DISTANCE)
            if 0 < distance <= TYPO_MAX_DISTANCE:
                return MismatchVerdict(
                    True, MismatchClass.TYPO,
                    f"{pattern!r} is {distance} edits from {host!r}")

    # 2. TLD mismatch: identical up to the top-level domain.
    for pattern in patterns:
        bare = _strip_wildcard(pattern)
        pattern_head = bare.rsplit(".", 1)[0]
        for host in hosts:
            host_head = host.rsplit(".", 1)[0]
            if pattern_head == host_head and _tld(bare) != _tld(host):
                return MismatchVerdict(
                    True, MismatchClass.TLD,
                    f"{pattern!r} vs {host!r}: TLDs differ")

    # 3. 3LD+: same registrable domain, diverging deeper labels.
    for pattern in patterns:
        bare = _strip_wildcard(pattern)
        pattern_sld = _esld_text(bare)
        if not pattern_sld:
            continue
        for host in hosts:
            if _esld_text(host) == pattern_sld:
                return MismatchVerdict(
                    True, MismatchClass.THREE_LD,
                    f"{pattern!r} and {host!r} share eSLD {pattern_sld!r}")

    # 4. Nothing matches at all.
    return MismatchVerdict(True, MismatchClass.DOMAIN,
                           "no pattern shares a registrable domain "
                           "with any MX")


def classify_snapshot(snap: DomainSnapshot) -> MismatchVerdict:
    """Figure-8 classification for one scanned domain."""
    if not snap.policy_ok or not snap.mx_patterns or not snap.mx_hostnames:
        return MismatchVerdict(False)
    return classify_mismatch(snap.mx_patterns, snap.mx_hostnames)


def mismatch_census(snapshots: List[DomainSnapshot]) -> dict:
    """One month's Figure-8 row: counts per mismatch class plus the
    enforce-mode exposure."""
    counts = {cls: 0 for cls in MismatchClass}
    enforce = 0
    total_sts = 0
    for snap in snapshots:
        if not snap.sts_like:
            continue
        total_sts += 1
        verdict = classify_snapshot(snap)
        if not verdict.mismatch:
            continue
        assert verdict.mismatch_class is not None
        counts[verdict.mismatch_class] += 1
        if snap.enforce_mode:
            enforce += 1
    return {"total_sts": total_sts, "counts": counts, "enforce": enforce}
