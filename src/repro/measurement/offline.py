"""Offline MTA-STS assessment from zone files and policy text.

The library's scanner normally drives live (simulated) transports, but
the parsing/validation core is pure — this module packages it as an
offline linter a domain operator can run against the artefacts they
actually control: their zone file and their policy file.  It checks
everything checkable without a network:

* the ``_mta-sts`` TXT record's syntax and uniqueness (§4.3.2);
* the policy body's syntax (§4.3.3);
* the presence of the ``mta-sts`` policy-host A/CNAME record;
* consistency between the policy's ``mx`` patterns and the zone's MX
  records, with the Figure-8 mismatch classification;
* enforce-mode delivery-failure exposure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.matching import policy_covers_mx, unused_patterns
from repro.core.policy import Policy, PolicyMode, check_policy_text
from repro.core.record import evaluate_txt_rrset
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import MxRecord, RRType, TxtRecord
from repro.dns.zone import Zone, parse_master_file
from repro.errors import MismatchClass
from repro.measurement.inconsistency import classify_mismatch


@dataclass
class OfflineFinding:
    """One issue found by the offline assessment."""

    severity: str          # "error" | "warning" | "info"
    component: str         # "record" | "policy-host" | "policy" | "mx"
    message: str

    def render(self) -> str:
        return f"[{self.severity:<7}] {self.component:<12} {self.message}"


@dataclass
class OfflineAssessment:
    """The full offline verdict for one domain."""

    domain: str
    findings: List[OfflineFinding] = field(default_factory=list)
    record_valid: bool = False
    policy: Optional[Policy] = None
    mx_hostnames: List[str] = field(default_factory=list)
    consistent: Optional[bool] = None
    mismatch_class: Optional[MismatchClass] = None

    @property
    def errors(self) -> List[OfflineFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, severity: str, component: str, message: str) -> None:
        self.findings.append(OfflineFinding(severity, component, message))


def assess_zone(zone_text: str, domain: str,
                policy_text: Optional[str] = None,
                *, origin: Optional[str] = None) -> OfflineAssessment:
    """Assess *domain*'s MTA-STS posture from its zone file.

    *policy_text*, when given, is the content the operator intends to
    serve at the well-known URI; without it only DNS-side checks run.
    """
    domain = canonical_host(domain)
    assessment = OfflineAssessment(domain=domain)
    try:
        zone = parse_master_file(zone_text, origin=origin or domain)
    except ValueError as exc:
        assessment.add("error", "record", f"zone file unparseable: {exc}")
        return assessment
    apex = DnsName.parse(domain)
    if not apex.is_subdomain_of(zone.apex):
        assessment.add("error", "record",
                       f"{domain} is not inside zone {zone.apex.text}")
        return assessment

    _check_record(zone, apex, assessment)
    _check_policy_host(zone, apex, assessment)
    _collect_mx(zone, apex, assessment)
    if policy_text is not None:
        _check_policy(policy_text, assessment)
    return assessment


def _check_record(zone: Zone, apex: DnsName,
                  assessment: OfflineAssessment) -> None:
    label = apex.child("_mta-sts")
    texts = [r.text for r in zone.lookup(label, RRType.TXT)
             if isinstance(r, TxtRecord)]
    evaluation = evaluate_txt_rrset(texts)
    if not evaluation.signals_sts:
        assessment.add("error", "record",
                       f"no MTA-STS TXT record at {label.text}")
        return
    if evaluation.valid:
        assessment.record_valid = True
        assessment.add("info", "record",
                       f"valid record: {texts[0]!r}")
    else:
        assessment.add("error", "record",
                       f"{evaluation.error.value}: {evaluation.detail}")


def _check_policy_host(zone: Zone, apex: DnsName,
                       assessment: OfflineAssessment) -> None:
    host = apex.child("mta-sts")
    has_a = bool(zone.lookup(host, RRType.A)) or \
        bool(zone.lookup(host, RRType.AAAA))
    cname = zone.cname_at(host)
    if cname is not None:
        assessment.add("info", "policy-host",
                       f"delegated via CNAME to {cname.target.text} — "
                       f"keep the hosted policy in sync with your MX "
                       f"records (§4.5)")
    elif has_a:
        assessment.add("info", "policy-host",
                       f"self-hosted at {host.text}; the web server "
                       f"must present a certificate covering that name")
    else:
        assessment.add("error", "policy-host",
                       f"no A/AAAA/CNAME record at {host.text}; policy "
                       f"retrieval will fail at the DNS stage")


def _collect_mx(zone: Zone, apex: DnsName,
                assessment: OfflineAssessment) -> None:
    records = sorted(
        (r for r in zone.lookup(apex, RRType.MX)
         if isinstance(r, MxRecord)),
        key=lambda r: (r.preference, r.exchange.text))
    assessment.mx_hostnames = [r.exchange.text for r in records]
    if not records:
        if zone.lookup(apex, RRType.A):
            assessment.add("warning", "mx",
                           "no MX records; the apex A record acts as an "
                           "implicit MX")
            assessment.mx_hostnames = [apex.text]
        else:
            assessment.add("error", "mx",
                           "no MX and no apex A record: the domain "
                           "cannot receive mail")


def _check_policy(policy_text: str, assessment: OfflineAssessment) -> None:
    check = check_policy_text(policy_text)
    for kind, detail in zip(check.errors, check.details):
        assessment.add("error", "policy", f"{kind.value}: {detail}")
    if check.policy is None:
        return
    assessment.policy = check.policy
    policy = check.policy
    assessment.add("info", "policy",
                   f"mode={policy.mode.value} max_age={policy.max_age} "
                   f"mx={list(policy.mx_patterns)}")

    if not assessment.mx_hostnames or not policy.mx_patterns:
        return
    covered = any(policy_covers_mx(policy, mx)
                  for mx in assessment.mx_hostnames)
    assessment.consistent = covered
    if covered:
        stale = unused_patterns(policy, assessment.mx_hostnames)
        if stale:
            assessment.add("warning", "policy",
                           f"patterns matching no current MX record "
                           f"(stale after a migration?): {stale}")
        uncovered = [mx for mx in assessment.mx_hostnames
                     if not policy_covers_mx(policy, mx)]
        if uncovered:
            assessment.add("warning", "policy",
                           f"MX hosts not covered by any pattern: "
                           f"{uncovered} — senders will skip them")
        return

    verdict = classify_mismatch(policy.mx_patterns,
                                assessment.mx_hostnames)
    assessment.mismatch_class = verdict.mismatch_class
    severity = ("error" if policy.mode is PolicyMode.ENFORCE
                else "warning")
    assessment.add(severity, "policy",
                   f"no MX record matches any mx pattern "
                   f"({verdict.mismatch_class.value}: {verdict.evidence})")
    if policy.mode is PolicyMode.ENFORCE:
        assessment.add("error", "policy",
                       "mode is enforce: MTA-STS-compliant senders "
                       "will refuse to deliver (the paper's §4.4 "
                       "delivery-failure class)")
