"""repro — reproduction of "Unraveling the Complexities of MTA-STS
Deployment and Management in Securing Email" (IMC 2025).

The package splits into:

* :mod:`repro.core` — MTA-STS itself (RFC 8461): records, policies,
  validation, the sender-side cache, DANE and TLSRPT companions;
* substrates — :mod:`repro.netsim`, :mod:`repro.dns`, :mod:`repro.pki`,
  :mod:`repro.tls`, :mod:`repro.web`, :mod:`repro.smtp`;
* :mod:`repro.ecosystem` — the synthetic longitudinal domain population
  standing in for the paper's zone-file scans;
* :mod:`repro.measurement` — the scanning/classification pipeline that
  regenerates every table and figure;
* :mod:`repro.survey` — the operator survey (Appendix C) and analysis.
"""

__version__ = "1.0.0"
