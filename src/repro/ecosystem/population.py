"""Synthetic domain population, calibrated to the paper's measurements.

The paper scanned four TLD zone files (Table 1) and found, at the final
snapshot (2024-09-29), 68,030 domains with MTA-STS records, of which
29.6% were misconfigured.  This module generates a scaled-down
population of :class:`DomainPlan` objects whose attributes — TLD,
adoption date, managing entities, policy mode, fault schedule — are
sampled so that every per-snapshot cross-section reproduces the
paper's reported rates and event spikes.

The generator emits *plans*, not infrastructure; the timeline
(:mod:`repro.ecosystem.timeline`) materialises plans into a
:class:`~repro.ecosystem.world.World` for each scan snapshot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.policy import PolicyMode
from repro.dns.name import canonical_host
from repro.ecosystem.misconfig import RETRIEVAL_BLOCKING, Fault

# --------------------------------------------------------------------------
# Paper-reported anchors (final snapshot, 2024-09-29)
# --------------------------------------------------------------------------

#: Table 1: domains with MX records and with MTA-STS, per TLD.
TABLE1 = {
    "com": {"mx_domains": 73_939_004, "sts_domains": 53_800},
    "net": {"mx_domains": 6_248_969, "sts_domains": 6_183},
    "org": {"mx_domains": 5_781_423, "sts_domains": 7_355},
    "se": {"mx_domains": 822_449, "sts_domains": 692},
}

TOTAL_STS_FINAL = 68_030          # sum of Table 1 sts_domains
INITIAL_ADOPTION_FRACTION = 0.27  # 2021-10 adoption was ~1/3.7 of final

#: §4.3.1/§4.3.3: policy-server managing entities at the final snapshot.
POLICY_ENTITY_SHARE = {"third": 28_591 / TOTAL_STS_FINAL,
                       "self": 25_344 / TOTAL_STS_FINAL}
#: §4.3.4: MX-host managing entities.
MX_ENTITY_SHARE = {"third": 40_683 / TOTAL_STS_FINAL,
                   "self": 23_512 / TOTAL_STS_FINAL}

#: Final-snapshot per-entity policy-server fault rates (Figure 5),
#: exclusive of the Porkbun event cohort which is added separately.
SELF_POLICY_RATES = {
    Fault.POLICY_DNS_UNRESOLVABLE: 42 / 25_344,
    Fault.POLICY_TCP_CLOSED: 130 / 25_344,
    Fault.POLICY_TCP_TIMEOUT: 63 / 25_344,
    # Figure 5's self-managed series sits well above the third-party
    # one in *every* month, not only after the Porkbun cohort (which is
    # added separately) — the persistent CN-mismatch base carries that.
    Fault.POLICY_TLS_CN_MISMATCH: 0.18,
    Fault.POLICY_TLS_SELF_SIGNED: 300 / 25_344,
    Fault.POLICY_TLS_EXPIRED: 186 / 25_344,
    Fault.POLICY_HTTP_404: 250 / 25_344,
    Fault.POLICY_HTTP_500: 127 / 25_344,
    Fault.POLICY_SYNTAX_BAD_MX: 36 / 25_344,
    Fault.POLICY_SYNTAX_MISSING_MODE: 19 / 25_344,
}
THIRD_POLICY_RATES = {
    Fault.POLICY_TLS_NO_CERT: 463 / 28_591,     # the DMARCReport class
    Fault.POLICY_TLS_EXPIRED: 400 / 28_591,
    Fault.POLICY_TLS_SELF_SIGNED: 250 / 28_591,
    Fault.POLICY_HTTP_404: 140 / 28_591,
    Fault.POLICY_HTTP_500: 75 / 28_591,
    Fault.POLICY_SYNTAX_BAD_MX: 76 / 28_591,
    Fault.POLICY_SYNTAX_EMPTY: 5 / 28_591,      # DMARCReport empty files
}
#: Domains whose policy hosting the heuristics cannot classify (small
#: shared hosts) carry the error mass that makes policy-server faults
#: 85% of all misconfigurations: the 20,144 total misconfigured minus
#: the classified policy/MX/record/inconsistency errors leaves roughly
#: 6,200 policy errors among the ~14,000 unclassified domains (~44%).
UNCLASSIFIED_POLICY_RATES = {
    Fault.POLICY_TLS_CN_MISMATCH: 0.24,
    Fault.POLICY_TLS_SELF_SIGNED: 0.05,
    Fault.POLICY_TLS_EXPIRED: 0.04,
    Fault.POLICY_TLS_NO_CERT: 0.02,
    Fault.POLICY_HTTP_404: 0.03,
    Fault.POLICY_SYNTAX_BAD_MX: 0.01,
}

#: Figure 6: MX-certificate fault rates per managing entity.
SELF_MX_RATES = {
    Fault.MX_CERT_CN_MISMATCH: 700 / 23_512,
    Fault.MX_CERT_SELF_SIGNED: 250 / 23_512,
    Fault.MX_CERT_EXPIRED: 96 / 23_512,
}
THIRD_MX_RATES = {
    Fault.MX_CERT_CN_MISMATCH: 200 / 40_683,
    Fault.MX_CERT_SELF_SIGNED: 130 / 40_683,
    Fault.MX_CERT_EXPIRED: 67 / 40_683,
}
#: Fraction of MX-cert-faulty domains where *every* MX is broken
#: (Figure 7: 993/1,046 self, 149/397 third at the final snapshot).
ALL_INVALID_SHARE = {"self": 993 / 1_046, "third": 149 / 397}

#: Figure 8: inconsistency classes at the final snapshot (of 68,030).
INCONSISTENCY_RATES = {
    Fault.MISMATCH_DOMAIN: 379 / TOTAL_STS_FINAL,   # 1,023 minus outdated 644
    Fault.OUTDATED_POLICY: 644 / TOTAL_STS_FINAL,   # Figure 9's 63%
    Fault.MISMATCH_3LD: (730 - 246) / TOTAL_STS_FINAL,
    Fault.MISMATCH_TYPO: 63 / TOTAL_STS_FINAL,
    Fault.MISMATCH_TLD: 90 / TOTAL_STS_FINAL,
}

#: §4.3.2: record-error classes at the final snapshot (331 total).
RECORD_RATES = {
    Fault.RECORD_INVALID_ID: 203 / TOTAL_STS_FINAL,
    Fault.RECORD_MISSING_ID: 65 / TOTAL_STS_FINAL,
    Fault.RECORD_BAD_VERSION: 52 / TOTAL_STS_FINAL,
    Fault.RECORD_INVALID_EXTENSION: 2 / TOTAL_STS_FINAL,
    Fault.RECORD_DUPLICATE: 9 / TOTAL_STS_FINAL,
}

#: Policy modes: enforce share chosen so enforce-mode at-risk counts
#: (269 MX / 406 mismatch) are reachable; remainder mostly testing.
MODE_WEIGHTS = [(PolicyMode.ENFORCE, 0.34), (PolicyMode.TESTING, 0.56),
                (PolicyMode.NONE, 0.10)]

#: Table 2 provider shares among third-party-hosted policy domains.
PROVIDER_CUSTOMERS = {
    "Tutanota": 7_614, "DMARCReport": 7_293, "PowerDMARC": 3_753,
    "EasyDMARC": 2_222, "Mailhardener": 1_558, "URIports": 1_100,
    "Sendmarc": 805, "OnDMARC": 451,
    # The long tail: 28,591 third-party-hosted domains minus Table 2's
    # 24,796 use smaller CNAME-delegating providers.
    "GenericSTS1": 1_700, "GenericSTS2": 1_300, "GenericSTS3": 795,
}

#: Event cohort sizes (paper-reported, pre-scaling).
PORKBUN_COHORT = 7_237            # Aug-2024 onward, bad policy-host certs
DMARCREPORT_SELF_SIGNED_SPIKE = 1_385   # June 8 2024, one month
LUCIDGROW_COHORT = 246            # Jan 23 2024, 3LD+ mismatch, enforce
ORG_ADOPTION_SPIKE = 461          # Jan 2 2024, one .org organisation

#: Number of scan months (Nov 2023 .. Sep 2024 inclusive).
SCAN_MONTHS = 11
LUCIDGROW_MONTH = 2               # Jan 2024
DMARC_SPIKE_MONTH = 7             # Jun 2024
PORKBUN_MONTH = 9                 # Aug 2024

#: Figure 12 anchors: TLSRPT adoption among MTA-STS domains grew from
#: roughly 35% to 70% over the measurement window.
TLSRPT_OF_STS_INITIAL = 0.38
TLSRPT_OF_STS_FINAL = 0.72


@dataclass
class ScheduledFault:
    """A fault active during scan months [start, end)."""

    fault: Fault
    start_month: int = 0
    end_month: Optional[int] = None     # None = persists to the end
    mx_index: Optional[int] = 0         # None = every MX

    def active(self, month: int) -> bool:
        if month < self.start_month:
            return False
        return self.end_month is None or month < self.end_month


@dataclass
class DomainPlan:
    """Everything needed to materialise one domain at any instant."""

    name: str
    tld: str
    adoption_week: int                    # weeks after the scan start
    mode: PolicyMode = PolicyMode.TESTING
    policy_provider: Optional[str] = None   # Table-2 name, or boutique id
    email_provider: Optional[str] = None
    dns_third_party: bool = False
    boutique_policy_host: Optional[str] = None   # unclassifiable hosting
    self_mx_count: int = 1
    faults: List[ScheduledFault] = field(default_factory=list)
    tlsrpt_week: Optional[int] = None
    tlsrpt_revoke_week: Optional[int] = None
    tranco_rank: Optional[int] = None
    #: MX migration month for OUTDATED_POLICY plans (the scanner sees
    #: the old MX before this month, the new one after).
    mx_migration_month: Optional[int] = None

    def faults_at(self, month: int) -> List[ScheduledFault]:
        return [f for f in self.faults if f.active(month)]

    def adopted_by_week(self, week: int) -> bool:
        return self.adoption_week <= week

    def has_tlsrpt_at_week(self, week: int) -> bool:
        if self.tlsrpt_week is None or week < self.tlsrpt_week:
            return False
        return (self.tlsrpt_revoke_week is None
                or week < self.tlsrpt_revoke_week)


@dataclass
class TldPopulation:
    """One TLD's synthetic registry."""

    tld: str
    mx_domain_total: int            # metadata: Table 1's denominator
    plans: List[DomainPlan] = field(default_factory=list)
    #: weekly count of *non-STS* domains with TLSRPT (Figure 12 top).
    tlsrpt_only_weekly: List[int] = field(default_factory=list)


@dataclass
class PopulationConfig:
    """Knobs for the generator."""

    scale: float = 0.05              # 1.0 = paper-scale (68k STS domains)
    seed: int = 20240929
    total_weeks: int = 160          # 2021-09 .. 2024-09 weekly snapshots
    scan_months: int = SCAN_MONTHS
    include_events: bool = True

    def scaled(self, count: int | float) -> int:
        return max(1, round(count * self.scale)) if count > 0 else 0


#: Week index (from 2021-09-09) of the first component scan (2023-11-07).
FIRST_SCAN_WEEK = 113


def _first_scan_month(adoption_week: int) -> int:
    """The first scan-month index at which a domain adopted at
    *adoption_week* is visible (0 for pre-window adopters)."""
    if adoption_week <= FIRST_SCAN_WEEK:
        return 0
    return min(SCAN_MONTHS - 1,
               (adoption_week - FIRST_SCAN_WEEK + 3) // 4)


def _interp(initial: float, final: float, month: int, months: int) -> float:
    if months <= 1:
        return final
    return initial + (final - initial) * month / (months - 1)


class _Sampler:
    """Deterministic sampling helpers around one RNG."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def pick_mode(self) -> PolicyMode:
        roll = self.rng.random()
        acc = 0.0
        for mode, weight in MODE_WEIGHTS:
            acc += weight
            if roll < acc:
                return mode
        return PolicyMode.TESTING

    def onset_month(self, months: int) -> int:
        """Sample a fault onset so cross-sections grow roughly linearly:
        ~60% of final faults existed at month 0, the rest appear
        uniformly over the window."""
        if self.rng.random() < 0.6:
            return 0
        return self.rng.randrange(1, max(2, months))

    def adoption_week(self, total_weeks: int) -> int:
        """Quadratic-growth adoption curve: a 3-4x rise over the window
        (Figure 2), so |adopters by week w| ~ a + (1-a) * (w/W)^2."""
        u = self.rng.random()
        a = INITIAL_ADOPTION_FRACTION
        if u < a:
            return 0
        return int(total_weeks * (((u - a) / (1 - a)) ** 0.5))


def generate_population(config: PopulationConfig) -> Dict[str, TldPopulation]:
    """Generate the full synthetic registry, keyed by TLD."""
    rng = random.Random(config.seed)
    sampler = _Sampler(rng)
    populations: Dict[str, TldPopulation] = {}
    serial = 0

    provider_quota = _scaled_provider_quota(config)
    boutique_cycle = 0

    for tld, anchors in TABLE1.items():
        population = TldPopulation(tld=tld,
                                   mx_domain_total=anchors["mx_domains"])
        sts_count = config.scaled(anchors["sts_domains"])
        for _ in range(sts_count):
            serial += 1
            plan = _make_plan(f"domain{serial:06d}.{tld}", tld, config,
                              sampler, provider_quota)
            boutique_cycle = _assign_boutique(plan, boutique_cycle, rng)
            population.plans.append(plan)
        populations[tld] = population

    if config.include_events:
        serial = _add_event_cohorts(populations, config, sampler, serial)

    _assign_tlsrpt(populations, config, rng)
    return populations


# --------------------------------------------------------------------------
# Deterministic sharding (the process scan backend's population API)
# --------------------------------------------------------------------------

def partition_names(names: Iterable[str], shards: int) -> List[List[str]]:
    """Cut a name set into *shards* contiguous canonical-order slices.

    The single source of truth for how any domain set is split across
    workers: names are canonicalised, deduplicated, sorted, and cut
    into contiguous slices whose sizes differ by at most one (earlier
    slices take the remainder).  Deterministic under input order,
    case, and trailing dots, so a parent process and its shard workers
    always agree on who owns which domain.  ``shards`` is clamped to
    the name count (an empty input yields one empty slice) — callers
    needing exactly N slices pad with empties.
    """
    ordered = sorted({canonical_host(n) for n in names} - {""})
    shards = max(1, min(shards, len(ordered)) if ordered else 1)
    base, remainder = divmod(len(ordered), shards)
    slices: List[List[str]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < remainder else 0)
        slices.append(ordered[start:start + size])
        start += size
    return slices


def iter_population(config: PopulationConfig) -> Iterator[DomainPlan]:
    """Every :class:`DomainPlan`, in deterministic generation order.

    Generation itself cannot stream: one sequential RNG feeds every
    plan, the event cohorts *mutate earlier plans* (the DMARCReport
    spike adds faults to already-generated delegated domains), and
    TLSRPT assignment draws per plan across the whole set.  Laziness
    therefore means deterministic *slicing* of the finished
    population, not incremental generation — this iterator is the
    streaming view, :func:`shard_plans` the shard-range view.
    """
    populations = generate_population(config)
    for population in populations.values():
        yield from population.plans


def shard_plans(config: PopulationConfig, index: int,
                count: int) -> List[DomainPlan]:
    """The plans in shard ``index`` of ``count`` canonical-order slices.

    The union of ``shard_plans(config, i, n)`` over ``i in range(n)``
    is exactly ``generate_population(config)``'s plan set, for any
    shard count — the property the process scan backend's workers rely
    on to jointly cover the population without coordination.  Slices
    past the population size are empty.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} outside [0, {count})")
    plans = {canonical_host(plan.name): plan
             for plan in iter_population(config)}
    slices = partition_names(plans.keys(), count)
    if index >= len(slices):
        return []
    return [plans[name] for name in slices[index]]


def _scaled_provider_quota(config: PopulationConfig) -> Dict[str, int]:
    return {name: config.scaled(count)
            for name, count in PROVIDER_CUSTOMERS.items()}


def _pick_policy_provider(quota: Dict[str, int],
                          rng: random.Random) -> Optional[str]:
    available = [name for name, left in quota.items() if left > 0]
    if not available:
        return None
    weights = [quota[name] for name in available]
    choice = rng.choices(available, weights=weights, k=1)[0]
    quota[choice] -= 1
    return choice


def _make_plan(name: str, tld: str, config: PopulationConfig,
               sampler: _Sampler, provider_quota: Dict[str, int]
               ) -> DomainPlan:
    rng = sampler.rng
    plan = DomainPlan(name=name, tld=tld,
                      adoption_week=sampler.adoption_week(config.total_weeks),
                      mode=sampler.pick_mode())

    # --- managing entities --------------------------------------------
    policy_roll = rng.random()
    if policy_roll < POLICY_ENTITY_SHARE["third"]:
        plan.policy_provider = _pick_policy_provider(provider_quota, rng)
        if plan.policy_provider is None:
            plan.boutique_policy_host = "pending"
    elif policy_roll < (POLICY_ENTITY_SHARE["third"]
                        + POLICY_ENTITY_SHARE["self"]):
        plan.policy_provider = None
    else:
        plan.boutique_policy_host = "pending"   # unclassifiable hosting

    mx_roll = rng.random()
    if plan.policy_provider == "Tutanota":
        # Tutanota bundles email hosting with policy hosting.
        plan.email_provider = "Tutanota"
    elif mx_roll < MX_ENTITY_SHARE["third"]:
        plan.email_provider = rng.choices(
            ["Google", "Microsoft", "Yahoo", "MxRouting", "MxAscen",
             "CheapMail"],
            weights=[40, 28, 10, 8, 7, 7], k=1)[0]
    else:
        plan.email_provider = None
        plan.self_mx_count = rng.choices([1, 2, 3], weights=[70, 25, 5])[0]
    plan.dns_third_party = rng.random() < 0.55

    if plan.email_provider == "MxAscen":
        # The §4.3.1 single-administrator group: 4,722 domains sharing
        # one MX, one policy-hosting IP — popular-looking yet
        # self-managed.  All of them share one policy host.
        plan.boutique_policy_host = "policyfarm.mxascen.com"
        plan.policy_provider = None

    # --- fault schedule ---------------------------------------------------
    months = config.scan_months
    _sample_faults(plan, RECORD_RATES, sampler, months)
    if plan.boutique_policy_host == "policyfarm.mxascen.com":
        # The single-admin group is competently run; only per-customer
        # faults at self-managed rates, never host-wide ones.
        _sample_faults(plan, {f: r for f, r in SELF_POLICY_RATES.items()
                              if f not in (Fault.POLICY_DNS_UNRESOLVABLE,
                                           Fault.POLICY_TCP_CLOSED,
                                           Fault.POLICY_TCP_TIMEOUT)},
                       sampler, months, at_most_one_of=RETRIEVAL_BLOCKING)
    elif plan.boutique_policy_host is not None:
        _sample_faults(plan, UNCLASSIFIED_POLICY_RATES, sampler, months,
                       at_most_one_of=RETRIEVAL_BLOCKING)
    elif plan.policy_provider is None:
        _sample_faults(plan, SELF_POLICY_RATES, sampler, months,
                       at_most_one_of=RETRIEVAL_BLOCKING)
    else:
        _sample_faults(plan, THIRD_POLICY_RATES, sampler, months,
                       at_most_one_of=RETRIEVAL_BLOCKING)

    if plan.email_provider is None:
        for fault, rate in SELF_MX_RATES.items():
            if sampler.rng.random() < rate:
                all_mx = sampler.rng.random() < ALL_INVALID_SHARE["self"]
                plan.faults.append(ScheduledFault(
                    fault, sampler.onset_month(months),
                    mx_index=None if all_mx else 0))
                break   # one certificate fault class per domain
    elif plan.email_provider not in ("Tutanota", "MxAscen"):
        # A broken certificate on a *shared* provider MX farm would hit
        # every customer at once, so third-party MX faults are modelled
        # as assignment to a broken MX *pool inside a large provider*
        # (the mxrouting.net pattern: one provider accounts for 39% of
        # broken third-party domains).  Pool members keep the
        # provider's registrable domain, so entity classification still
        # sees a popular third party.
        for fault, rate in THIRD_MX_RATES.items():
            if sampler.rng.random() < rate:
                all_mx = sampler.rng.random() < ALL_INVALID_SHARE["third"]
                suffix = "all" if all_mx else "partial"
                pool_provider = ("MxRouting"
                                 if fault is Fault.MX_CERT_CN_MISMATCH
                                 else "CheapMail")
                plan.email_provider = f"{pool_provider}!{fault.value}-{suffix}"
                break

    blocking = {f.fault for f in plan.faults} & RETRIEVAL_BLOCKING
    # Inconsistencies concentrate where policy and email management are
    # split (Figure 10): same-provider-for-both domains (Tutanota) are
    # effectively immune, split-management domains are over-represented.
    if not blocking and plan.policy_provider != "Tutanota":
        # Figure 10: 3.4% of split-management domains are inconsistent
        # versus ~2.6% elsewhere; with Tutanota immune, the split pool
        # needs roughly a 2.2x weighting over the base rates.
        split_management = (plan.policy_provider is not None
                            and plan.email_provider is not None)
        factor = 2.2 if split_management else 1.0
        for fault, rate in INCONSISTENCY_RATES.items():
            if sampler.rng.random() < rate * factor:
                if fault is Fault.OUTDATED_POLICY:
                    # Migrations accumulate over the window (Figure 9's
                    # rising matched-by-history share) and need at least
                    # one pre-migration snapshot *after* the domain's
                    # adoption — otherwise the stale patterns can never
                    # be matched against history.
                    first_scan = _first_scan_month(plan.adoption_week)
                    onset = sampler.rng.randrange(
                        first_scan + 1, max(first_scan + 2, months))
                    plan.mx_migration_month = onset
                else:
                    onset = sampler.onset_month(months)
                plan.faults.append(ScheduledFault(fault, onset))
                break   # inconsistency classes are mutually exclusive

    return plan


def _sample_faults(plan: DomainPlan, rates: Dict[Fault, float],
                   sampler: _Sampler, months: int,
                   at_most_one_of: frozenset = frozenset()) -> None:
    picked_blocking = False
    for fault, rate in rates.items():
        if sampler.rng.random() >= rate:
            continue
        if fault in at_most_one_of:
            if picked_blocking:
                continue
            picked_blocking = True
        plan.faults.append(ScheduledFault(fault, sampler.onset_month(months)))


def _assign_boutique(plan: DomainPlan, cycle: int,
                     rng: random.Random) -> int:
    """Give unclassifiable domains a boutique policy host (each boutique
    serves 10-30 domains: too big for the self heuristic, too small for
    the third-party one)."""
    if plan.boutique_policy_host == "pending":
        boutique_index = cycle // 20
        plan.boutique_policy_host = f"boutique{boutique_index:03d}.host"
        cycle += 1
    return cycle


def _add_event_cohorts(populations: Dict[str, TldPopulation],
                       config: PopulationConfig, sampler: _Sampler,
                       serial: int) -> int:
    """The paper's discrete incidents, as dedicated cohorts."""
    rng = sampler.rng
    months = config.scan_months
    final_week = config.total_weeks - 1

    # Porkbun LLC: newly registered domains (Aug 2024 onward) whose
    # self-managed policy hosts present invalid certificates.
    porkbun_week = config.total_weeks - 8
    for _ in range(config.scaled(PORKBUN_COHORT)):
        serial += 1
        plan = DomainPlan(
            name=f"pb{serial:06d}.com", tld="com",
            adoption_week=porkbun_week + rng.randrange(0, 7),
            mode=PolicyMode.TESTING, email_provider=None)
        plan.faults.append(ScheduledFault(
            Fault.POLICY_TLS_CN_MISMATCH, PORKBUN_MONTH))
        populations["com"].plans.append(plan)

    # DMARCReport self-signed certificate incident (June 8, 2024): a
    # one-month transient affecting 1,385 delegated domains.
    dmarc_plans = [p for pop in populations.values() for p in pop.plans
                   if p.policy_provider == "DMARCReport"
                   and not p.faults]
    spike = config.scaled(DMARCREPORT_SELF_SIGNED_SPIKE)
    for plan in dmarc_plans[:spike]:
        plan.faults.append(ScheduledFault(
            Fault.POLICY_TLS_SELF_SIGNED, DMARC_SPIKE_MONTH,
            DMARC_SPIKE_MONTH + 1))

    # lucidgrow.com (Jan 23, 2024): unique per-customer MX hosts with
    # DMARCReport-hosted policies that matched no MX record for a month,
    # in enforce mode.
    for _ in range(config.scaled(LUCIDGROW_COHORT)):
        serial += 1
        plan = DomainPlan(
            name=f"lg{serial:06d}.com", tld="com", adoption_week=0,
            mode=PolicyMode.ENFORCE, email_provider="Lucidgrow",
            policy_provider="DMARCReport")
        plan.faults.append(ScheduledFault(
            Fault.MISMATCH_3LD, LUCIDGROW_MONTH, LUCIDGROW_MONTH + 1))
        populations["com"].plans.append(plan)

    # The .org organisation that adopted 461 domains on Jan 2, 2024
    # (the Figure 2 spike).
    org_week = 120    # early January 2024 in week coordinates
    for _ in range(config.scaled(ORG_ADOPTION_SPIKE)):
        serial += 1
        populations["org"].plans.append(DomainPlan(
            name=f"org-fleet{serial:06d}.org", tld="org",
            adoption_week=org_week, mode=PolicyMode.TESTING,
            email_provider="Google", policy_provider=None))

    # laura-norman.com: the single same-provider-managed domain whose
    # typo persisted through every snapshot (Figure 10).
    laura = DomainPlan(
        name="laura-norman.com", tld="com", adoption_week=0,
        mode=PolicyMode.TESTING, email_provider="Tutanota",
        policy_provider="Tutanota")
    laura.faults.append(ScheduledFault(Fault.MISMATCH_TYPO, 0))
    populations["com"].plans.append(laura)
    return serial


def _assign_tlsrpt(populations: Dict[str, TldPopulation],
                   config: PopulationConfig, rng: random.Random) -> None:
    """TLSRPT adoption (Figure 12).

    Bottom graph: among MTA-STS domains, TLSRPT adoption grows from
    ~38% to ~72%.  Top graph: TLSRPT-only domains (no MTA-STS) track
    the MTA-STS curve closely in absolute numbers; we synthesise their
    weekly counts as metadata.
    """
    weeks = config.total_weeks
    for population in populations.values():
        for plan in population.plans:
            if rng.random() < TLSRPT_OF_STS_FINAL:
                # Adopted at or after the MTA-STS adoption week; early
                # adopters reproduce the initial 38% level.
                if rng.random() < TLSRPT_OF_STS_INITIAL / TLSRPT_OF_STS_FINAL:
                    plan.tlsrpt_week = plan.adoption_week
                else:
                    plan.tlsrpt_week = min(
                        weeks - 1,
                        plan.adoption_week + rng.randrange(1, weeks))
        # Figure 12 events in the top graph: .se revocations (Dec 2021)
        # and the .net additions (mid 2024) involve mostly non-STS
        # domains, tracked as aggregate weekly counts.
        initial = config.scaled(
            {"com": 11_531, "net": 1_100, "org": 1_527, "se": 160}
            [population.tld])
        final = config.scaled(
            {"com": 52_641, "net": 6_100, "org": 7_192, "se": 700}
            [population.tld])
        series = []
        for week in range(weeks):
            base = initial + (final - initial) * (week / max(1, weeks - 1)) ** 2
            if population.tld == "se" and week >= 15:
                base -= config.scaled(82)      # the Dec-21 .se revocation
            if population.tld == "net" and 145 <= week:
                base += config.scaled(1_411 - 198)   # mid-24 .net additions
            series.append(max(0, round(base)))
        population.tlsrpt_only_weekly = series
