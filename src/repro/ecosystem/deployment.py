"""Deploying one domain's full MTA-STS stack into a :class:`World`.

A :class:`DomainSpec` is the declarative description of how a domain
owner set things up — who runs their DNS, MX, and policy hosting, what
the policy says, and which faults (if any) their configuration
carries.  :func:`deploy_domain` turns the spec into live simulated
infrastructure: a zone on an authoritative server, MX hosts with
STARTTLS certificates, and a policy file served over HTTPS either from
the owner's own web server or via CNAME delegation to a provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.core.policy import Policy, PolicyMode, render_policy
from repro.core.record import StsRecord
from repro.core.tlsrpt import TlsRptRecord
from repro.dns.name import DnsName
from repro.dns.records import (
    ARecord, CnameRecord, MxRecord, NsRecord, RRType, SoaRecord, TxtRecord,
)
from repro.dns.zone import Zone
from repro.ecosystem.providers import EmailProvider, PolicyHostProvider
from repro.ecosystem.world import World
from repro.netsim.ip import IpAddress
from repro.smtp.server import SMTP_PORT, MxHost
from repro.tls.handshake import TlsEndpoint
from repro.web.server import HTTPS_PORT, WebServer


@dataclass
class DomainSpec:
    """How one domain's email and MTA-STS stack is arranged."""

    domain: str
    # DNS management: None = self-managed NS under the domain itself.
    dns_provider_sld: Optional[str] = None
    # Email: a provider, or None for a self-managed MX.
    email_provider: Optional[EmailProvider] = None
    self_mx_count: int = 1
    # Policy hosting: a provider, or None for self-managed (when the
    # domain deploys MTA-STS at all).
    policy_provider: Optional[PolicyHostProvider] = None
    # MTA-STS intent
    deploy_sts: bool = True
    record_id: str = "20240101"
    policy: Optional[Policy] = None
    # TLSRPT
    tlsrpt: Optional[TlsRptRecord] = None

    def effective_policy(self) -> Policy:
        if self.policy is not None:
            return self.policy
        return Policy(version="STSv1", mode=PolicyMode.TESTING,
                      max_age=604800, mx_patterns=tuple(self.intended_mx()))

    def intended_mx(self) -> List[str]:
        if self.email_provider is not None:
            if self.email_provider.assigns_unique_mx_per_customer:
                return [f"{self.domain.replace('.', '-')}.mail."
                        f"{self.email_provider.sld}"]
            return list(self.email_provider.mx_hostnames)
        return [f"mx{i + 1}.{self.domain}" if self.self_mx_count > 1
                else f"mail.{self.domain}"
                for i in range(self.self_mx_count)]


@dataclass
class DeployedDomain:
    """Handles to everything :func:`deploy_domain` built."""

    spec: DomainSpec
    zone: Zone
    mx_hosts: List[MxHost] = field(default_factory=list)
    policy_server: Optional[WebServer] = None   # self-managed only
    policy_text: str = ""

    @property
    def domain(self) -> str:
        return self.spec.domain

    # -- mutation helpers used by the misconfig injector and timeline ---

    def set_record(self, text: str) -> None:
        name = DnsName.parse(f"_mta-sts.{self.domain}")
        self.zone.remove(name, RRType.TXT)
        self.zone.add(TxtRecord(name, 300, text))

    def remove_record(self) -> None:
        self.zone.remove(DnsName.parse(f"_mta-sts.{self.domain}"), RRType.TXT)

    def set_policy_text(self, text: str) -> None:
        self.policy_text = text
        if self.policy_server is not None:
            self.policy_server.host_policy(self.domain, text)
        elif self.spec.policy_provider is not None:
            provider = self.spec.policy_provider
            assert provider.web_server is not None
            provider.hosted_policies[self.domain] = text
            provider.web_server.host_policy(self.domain, text)

    def set_mx_records(self, hostnames: List[str]) -> None:
        apex = DnsName.parse(self.domain)
        self.zone.remove(apex, RRType.MX)
        for i, hostname in enumerate(hostnames):
            self.zone.add(MxRecord(apex, 3600, 10 + i,
                                   DnsName.parse(hostname)))

    def mx_record_hostnames(self) -> List[str]:
        apex = DnsName.parse(self.domain)
        records = sorted(self.zone.lookup(apex, RRType.MX),
                         key=lambda r: (r.preference, r.exchange.text))
        return [r.exchange.text for r in records]


def _sts_record_text(record_id: str) -> str:
    return f"v=STSv1; id={record_id};"


def deploy_domain(world: World, spec: DomainSpec) -> DeployedDomain:
    """Build the full stack for *spec* and return the handles."""
    apex = DnsName.parse(spec.domain)
    zone = Zone(apex=apex)
    zone.add(SoaRecord(apex))

    # NS records: self-managed shares the domain's SLD; provider-managed
    # points at the provider (classification Heuristic 2 keys on this).
    ns_base = spec.dns_provider_sld or spec.domain
    for i in (1, 2):
        zone.add(NsRecord(apex, 86400, DnsName.parse(f"ns{i}.{ns_base}")))

    deployed = DeployedDomain(spec=spec, zone=zone)

    # --- MX hosts -----------------------------------------------------
    mx_hostnames = spec.intended_mx()
    if spec.email_provider is not None:
        spec.email_provider.deploy(world)
        if spec.email_provider.assigns_unique_mx_per_customer:
            _deploy_unique_provider_mx(world, spec, mx_hostnames[0])
    else:
        for hostname in mx_hostnames:
            ip = world.fresh_ip("mx")
            tls = TlsEndpoint()
            cert = world.issue_cert([hostname])
            tls.install(hostname, cert, default=True)
            deployed.mx_hosts.append(
                MxHost(hostname, ip, world.network, tls=tls))
            zone.add(ARecord(DnsName.parse(hostname), 3600, ip))
    for i, hostname in enumerate(mx_hostnames):
        zone.add(MxRecord(apex, 3600, 10 + i, DnsName.parse(hostname)))

    # --- apex A record (websites exist; also the implicit-MX fallback) --
    zone.add(ARecord(apex, 3600, world.fresh_ip("web")))

    # The zone goes live now: provider onboarding below performs ACME
    # domain validation, which must be able to resolve the customer's
    # mta-sts records through the real resolver.
    world.host_zone(zone)

    # --- MTA-STS -----------------------------------------------------------
    if spec.deploy_sts:
        policy = spec.effective_policy()
        policy_text = render_policy(policy)
        deployed.policy_text = policy_text
        zone.add(TxtRecord(DnsName.parse(f"_mta-sts.{spec.domain}"), 300,
                           _sts_record_text(spec.record_id)))
        policy_host = DnsName.parse(f"mta-sts.{spec.domain}")
        if spec.policy_provider is not None:
            provider = spec.policy_provider
            provider.deploy(world)
            if provider.delegate_via_cname:
                provider.publish_canonical_dns(world, spec.domain)
                zone.add(CnameRecord(
                    policy_host, 3600,
                    DnsName.parse(provider.canonical_host_for(spec.domain))))
            else:
                assert provider.web_server is not None
                zone.add(ARecord(policy_host, 3600,
                                 provider.web_server.ip))
            provider.onboard(world, spec.domain, policy)
        else:
            ip = world.fresh_ip("web")
            server = WebServer(f"www.{spec.domain}", ip, world.network)
            cert = world.issue_cert([f"mta-sts.{spec.domain}"])
            server.tls.install(f"mta-sts.{spec.domain}", cert, default=True)
            server.host_policy(spec.domain, policy_text)
            deployed.policy_server = server
            zone.add(ARecord(policy_host, 3600, ip))

    # --- TLSRPT --------------------------------------------------------------
    if spec.tlsrpt is not None:
        zone.add(TxtRecord(DnsName.parse(f"_smtp._tls.{spec.domain}"), 300,
                           spec.tlsrpt.render()))

    return deployed


def undeploy_domain(world: World, deployed: DeployedDomain) -> None:
    """Tear down everything :func:`deploy_domain` (and any fault applied
    on top of it) built for one domain, so the incremental materializer
    can redeploy the domain from its current spec.

    Shared provider infrastructure survives — only the *per-customer*
    state is withdrawn: the domain's zone and its authoritative server,
    self-managed MX listeners, the self-managed policy web server, the
    provider-side hosted policy, per-customer TLS entries (certificates
    and SNI alerts), and per-customer canonical DNS.  A canonical host
    shared by every customer (Tutanota's ``_mta-sts.tutanota.de``) is
    never withdrawn.
    """
    spec = deployed.spec
    domain = deployed.domain

    # Self-managed MX hosts, including any standalone migration host an
    # OUTDATED_POLICY fault appended.  Hosts living under a foreign SLD
    # keep their zone (it may be redeployed into), but their A record
    # must go so a redeploy can re-point it at the replacement listener.
    for host in deployed.mx_hosts:
        world.network.unregister(host.ip, SMTP_PORT)
        if not host.hostname.endswith("." + domain):
            _remove_foreign_a_record(world, host.hostname, host.ip)

    # The lucidgrow pattern: a per-customer MX under the provider's SLD,
    # registered outside deployed.mx_hosts.
    provider = spec.email_provider
    if provider is not None and provider.assigns_unique_mx_per_customer:
        hostname = spec.intended_mx()[0]
        server = world.server_for(provider.sld)
        zone = server.zone_for(DnsName.parse(provider.sld)) if server else None
        if zone is not None:
            name = DnsName.parse(hostname)
            for record in zone.lookup(name, RRType.A):
                world.network.unregister(record.address, SMTP_PORT)
            zone.remove(name, RRType.A)

    # Policy hosting.
    if deployed.policy_server is not None:
        world.network.unregister(deployed.policy_server.ip, HTTPS_PORT)
    policy_provider = spec.policy_provider
    if policy_provider is not None and policy_provider.web_server is not None:
        web = policy_provider.web_server
        policy_host = f"mta-sts.{domain}"
        web.unhost_policy(domain)
        web.tls.uninstall(policy_host)
        web.tls.alert_snis.discard(policy_host)
        policy_provider.hosted_policies.pop(domain, None)
        if (policy_provider.delegate_via_cname
                and "{" in policy_provider.cname_pattern):
            # Per-customer canonical host only; a placeholder-free
            # pattern is one shared host serving every customer.
            policy_provider._withdraw_canonical_dns(world, domain)

    # Finally the zone itself and its authoritative server.
    world.unhost_zone(domain)


def _remove_foreign_a_record(world: World, hostname: str,
                             ip: IpAddress) -> None:
    """Drop *hostname*'s A record from whichever hosted zone serves it."""
    name = DnsName.parse(hostname)
    for i in range(1, len(name.labels)):
        apex = DnsName(name.labels[i:])
        server = world.server_for(apex.text)
        if server is None:
            continue
        zone = server.zone_for(apex)
        if zone is None:
            continue
        remaining = [r for r in zone.lookup(name, RRType.A)
                     if r.address != ip]
        zone.remove(name, RRType.A)
        for record in remaining:
            zone.add(record)
        return


def _deploy_unique_provider_mx(world: World, spec: DomainSpec,
                               hostname: str) -> None:
    """The lucidgrow pattern: a unique MX hostname per customer, all on
    the provider's infrastructure with provider-issued certs."""
    provider = spec.email_provider
    assert provider is not None
    ip = world.fresh_ip("mx")
    tls = TlsEndpoint()
    cert = world.issue_cert([hostname])
    tls.install(hostname, cert, default=True)
    MxHost(hostname, ip, world.network, tls=tls)

    apex = DnsName.parse(provider.sld)
    server = world.server_for(provider.sld)
    if server is None:
        zone = Zone(apex=apex)
        server = world.host_zone(zone)
    zone = server.zone_for(apex)
    assert zone is not None
    zone.add(ARecord(DnsName.parse(hostname), 3600, ip))
