"""The simulation harness.

A :class:`World` bundles everything a scenario needs: the simulated
network and clock, a TLD registry with authoritative servers, a root
CA with its trust store, an ACME front-end, the DNSSEC authority, and
ready-made clients (resolver, HTTPS client, SMTP probe).  Tests,
examples, and the ecosystem simulator all start from ``World()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.clock import Clock, Instant
from repro.dns.dnssec import DnssecAuthority
from repro.dns.name import DnsName
from repro.dns.records import NsRecord, SoaRecord
from repro.dns.resolver import Resolver
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.netsim.ip import IpAddress, IpPool
from repro.netsim.network import Network
from repro.netsim.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.pki.acme import AcmeService
from repro.pki.ca import CertificateAuthority, TrustStore
from repro.pki.certificate import CertTemplate
from repro.smtp.client import SmtpProbe
from repro.web.client import HttpsClient

DEFAULT_START = Instant.from_date(2021, 9, 9)   # first day of the paper's scans
#: The paper's four scanned TLDs plus the suffixes provider
#: infrastructure lives under (tutanota.de, mta-sts.tech, ...).
DEFAULT_TLDS = ("com", "net", "org", "se", "de", "tech", "pro", "host", "nu")


class World:
    """A fully wired simulated internet."""

    def __init__(self, *, start: Instant = DEFAULT_START,
                 tlds: tuple[str, ...] = DEFAULT_TLDS,
                 retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY):
        self.clock = Clock(start)
        self.retry_policy = retry_policy
        # The network shares the world clock so time-keyed fault
        # schedules (FLAP) see the simulated instant, not wall time.
        self.network = Network(clock=self.clock)
        self.dnssec = DnssecAuthority()

        # Address plan: infrastructure pools per role so that "nearby
        # IPs" has meaning for the classification heuristics.
        self.dns_ip_pool = IpPool(base_second_octet=10)
        self.web_ip_pool = IpPool(base_second_octet=20)
        self.mx_ip_pool = IpPool(base_second_octet=30)

        # One public CA everyone trusts (Let's Encrypt's role).
        self.ca = CertificateAuthority("Simulated Root CA", self.clock)
        self.trust_store = TrustStore([self.ca.root])

        # TLD infrastructure: one authoritative server per TLD, holding
        # the TLD zone (delegations are modelled via the resolver's
        # delegation registry instead of NS-glue chasing).
        self.resolver = Resolver(self.network, self.clock,
                                 retry_policy=retry_policy)
        self.tld_servers: Dict[str, AuthoritativeServer] = {}
        for tld in tlds:
            server = AuthoritativeServer(
                f"{tld}-registry", self.dns_ip_pool.allocate(), self.network)
            zone = Zone(apex=DnsName.parse(tld))
            zone.add(SoaRecord(DnsName.parse(tld),
                               mname=DnsName.parse(f"ns1.{tld}-registry.net")
                               if tld != "net" else DnsName.parse("ns1.registry.net")))
            server.add_zone(zone)
            self.tld_servers[tld] = server
            self.resolver.delegate(tld, [server.ip])
            self.dnssec.sign_zone(tld, publish_ds=True)

        self.acme = AcmeService(self.ca, self.resolver, self.clock)
        self.https_client = HttpsClient(
            self.network, self.resolver, self.trust_store, self.clock,
            retry_policy=retry_policy)

        self._domain_servers: Dict[str, AuthoritativeServer] = {}

        # The scanner's own FCrDNS identity (§4.1 methodology): a
        # forward A record plus the matching PTR, so MTAs that verify
        # forward-confirmed reverse DNS accept our probes.
        self.scanner_hostname = "scanner.netsecurelab.org"
        self.scanner_ip = self.mx_ip_pool.allocate()
        self.network.register_host(self.scanner_ip)
        self._publish_scanner_identity()
        self.smtp_probe = SmtpProbe(
            self.network, self.resolver, self.trust_store, self.clock,
            client_name=self.scanner_hostname, client_ip=self.scanner_ip,
            retry_policy=retry_policy)

    def _publish_scanner_identity(self) -> None:
        from repro.dns.records import ARecord
        from repro.dns.reverse import publish_ptr
        from repro.dns.zone import Zone

        forward = Zone(apex=DnsName.parse("netsecurelab.org"))
        forward.add(ARecord(DnsName.parse(self.scanner_hostname), 3600,
                            self.scanner_ip))
        self.host_zone(forward)

        self.reverse_zone = Zone(apex=DnsName.parse("in-addr.arpa"))
        publish_ptr(self.reverse_zone, self.scanner_ip,
                    self.scanner_hostname)
        self.host_zone(self.reverse_zone)

    # -- conveniences ------------------------------------------------------

    def now(self) -> Instant:
        return self.clock.now()

    def host_zone(self, zone: Zone, *,
                  server: Optional[AuthoritativeServer] = None
                  ) -> AuthoritativeServer:
        """Serve *zone* from a (new or given) authoritative server and
        register the delegation with the resolver."""
        if server is None:
            server = AuthoritativeServer(
                f"ns.{zone.apex.text}", self.dns_ip_pool.allocate(),
                self.network)
        server.add_zone(zone)
        self.resolver.delegate(zone.apex, [server.ip])
        self._domain_servers[zone.apex.text] = server
        return server

    def issue_cert(self, names: list[str], *,
                   lifetime_days: int = 90, backdate_days: int = 0):
        """Issue a certificate from the trusted CA without ACME checks."""
        return self.ca.issue(CertTemplate(names=names,
                                          lifetime_days=lifetime_days),
                             backdate_days=backdate_days)

    def unhost_zone(self, apex: str | DnsName) -> None:
        """Tear down a zone hosted via :meth:`host_zone`: withdraw the
        delegation and unplug the zone's authoritative server.  Used by
        the incremental materializer when a domain is redeployed."""
        apex_text = apex.text if isinstance(apex, DnsName) else apex
        server = self._domain_servers.pop(apex_text, None)
        self.resolver.undelegate(apex_text)
        if server is not None:
            from repro.dns.server import DNS_PORT
            self.network.unregister(server.ip, DNS_PORT)

    def renew_certificates(self, *, valid_at: Instant) -> int:
        """Renew every lapsed CA-issued certificate still in service.

        A full monthly rebuild mints fresh certificates, so nothing in
        a from-scratch world is ever *accidentally* expired; in a
        long-lived incremental world, 90-day leaf certificates lapse
        between scans unless someone plays the CA's renewal role.  This
        walks every TLS endpoint on the network and reissues (same
        names, same key) each certificate that our CA signed, that was
        still valid at *valid_at* (the previous scan instant), and that
        has since expired.  Certificates that were already invalid at
        *valid_at* — deliberately expired, self-signed, or revoked
        fault injections — are left broken, exactly as a negligent
        operator would.  Returns the number of renewals.
        """
        now = self.clock.now()
        renewed: Dict[str, object] = {}
        seen: set[int] = set()
        count = 0
        for listener in self.network.listeners():
            tls = getattr(listener.app, "tls", None)
            if tls is None or id(tls) in seen:
                continue
            seen.add(id(tls))
            for pattern, cert in list(tls.certificates.items()):
                if (cert.is_ca or cert.self_signed or cert.revoked
                        or cert.issuer_key != self.ca.key
                        or not cert.valid_at(valid_at)
                        or cert.valid_at(now)):
                    continue
                fingerprint = cert.cert_fingerprint()
                fresh = renewed.get(fingerprint)
                if fresh is None:
                    fresh = self.ca.issue(CertTemplate(
                        names=list(cert.san) or [cert.subject_cn],
                        key=cert.key, lifetime_days=365))
                    renewed[fingerprint] = fresh
                    count += 1
                tls.install(pattern, fresh,
                            default=tls.default_certificate is cert)
        return count

    def server_for(self, apex: str) -> Optional[AuthoritativeServer]:
        return self._domain_servers.get(apex)

    def fresh_ip(self, role: str = "web") -> IpAddress:
        pool = {"dns": self.dns_ip_pool, "web": self.web_ip_pool,
                "mx": self.mx_ip_pool}[role]
        return pool.allocate()
