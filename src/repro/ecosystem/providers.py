"""Provider models.

Two provider kinds matter to the paper:

* **email hosting providers** run MX farms that many customer domains
  point their MX records at (Google, Outlook, Tutanota, mxrouting.net);
* **policy hosting providers** serve MTA-STS policy files on behalf of
  customers via CNAME delegation (Table 2's eight: Tutanota,
  DMARCReport, PowerDMARC, EasyDMARC, Mailhardener, URIports,
  Sendmarc, OnDMARC).

Each policy host carries the opt-out behaviour the paper catalogued by
contacting provider support: NXDOMAIN responses, continued certificate
issuance (with or without policy updates), empty policy files, or
rejecting mail while leaving the policy stale (Tutanota).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.policy import Policy, PolicyMode, render_policy
from repro.dns.name import DnsName
from repro.dns.records import ARecord, RRType
from repro.dns.zone import Zone
from repro.ecosystem.world import World
from repro.netsim.ip import IpAddress
from repro.pki.certificate import CertTemplate
from repro.smtp.server import MxHost
from repro.tls.handshake import TlsEndpoint
from repro.web.server import WebServer


class OptOutBehavior(enum.Enum):
    """What a policy host does for a customer who stopped paying."""

    NXDOMAIN = "nxdomain"                  # Mailhardener, URIports, PowerDMARC
    REISSUE_CERT_STALE_POLICY = "reissue-stale"    # EasyDMARC, Sendmarc, OnDMARC
    REISSUE_CERT_EMPTY_POLICY = "reissue-empty"    # DMARCReport
    REJECT_MAIL_STALE_POLICY = "reject-mail"       # Tutanota


@dataclass
class EmailProvider:
    """A third-party email hosting provider with a shared MX farm."""

    name: str
    sld: str                                  # e.g. "google.com"
    mx_hostnames: List[str] = field(default_factory=list)
    mx_hosts: List[MxHost] = field(default_factory=list)
    cert_failure_rate: float = 0.0            # some providers slip (mxrouting)
    assigns_unique_mx_per_customer: bool = False   # the lucidgrow pattern

    def deploy(self, world: World, *, mx_count: int = 2) -> None:
        """Stand up the provider's MX farm with valid certificates."""
        if self.mx_hosts:
            return
        if not self.mx_hostnames:
            self.mx_hostnames = [f"mx{i + 1}.{self.sld}"
                                 for i in range(mx_count)]
        for hostname in self.mx_hostnames:
            ip = world.fresh_ip("mx")
            tls = TlsEndpoint()
            cert = world.issue_cert([hostname], lifetime_days=365)
            tls.install(hostname, cert, default=True)
            host = MxHost(hostname, ip, world.network, tls=tls)
            self.mx_hosts.append(host)
            self._publish_mx_dns(world, hostname, ip)

    def _publish_mx_dns(self, world: World, hostname: str,
                        ip: IpAddress) -> None:
        apex = DnsName.parse(self.sld)
        server = world.server_for(self.sld)
        if server is None:
            zone = Zone(apex=apex)
            server = world.host_zone(zone)
        zone = server.zone_for(apex)
        assert zone is not None
        zone.add(ARecord(DnsName.parse(hostname), 3600, ip))


@dataclass
class PolicyHostProvider:
    """A third-party MTA-STS policy hosting provider."""

    name: str
    sld: str                                   # e.g. "dmarcinput.com"
    cname_pattern: str                         # Table 2's CNAME shapes
    opt_out: OptOutBehavior
    email_hosting_support: bool = False        # Tutanota bundles both
    #: Table-2 providers take delegation via CNAME; small shared hosts
    #: (the unclassifiable boutiques) are pointed at directly with an
    #: A record on the mta-sts label.
    delegate_via_cname: bool = True
    web_server: Optional[WebServer] = None
    #: customer domain -> policy text currently served
    hosted_policies: Dict[str, str] = field(default_factory=dict)
    #: customers who opted out but still CNAME at us
    opted_out: Dict[str, str] = field(default_factory=dict)
    #: customers whose ACME domain validation failed at onboarding
    #: (their CNAME never pointed at us)
    acme_failures: List[str] = field(default_factory=list)
    updates_policy_on_mx_change: bool = False

    def canonical_sld(self) -> str:
        """The registrable domain of the canonical policy host — the key
        the CNAME-based delegation census (Table 2) groups by.  Differs
        from :attr:`sld` when a provider hosts policies under another
        domain (Tutanota: web identity tutanota.com, policy host
        tutanota.de)."""
        from repro.dns.name import effective_sld

        name = DnsName.try_parse(self.canonical_host_for("a.com"))
        if name is None:
            return self.sld
        sld = effective_sld(name)
        return sld.text if sld is not None else self.sld

    def canonical_host_for(self, customer_domain: str) -> str:
        """The CNAME target this provider assigns to a customer.

        Patterns follow Table 2, e.g. ``a-com.mta-sts.dmarcinput.com``
        for ``a.com`` at DMARCReport, or the shared
        ``_mta-sts.tutanota.de`` for every Tutanota customer.
        """
        flat_dash = customer_domain.replace(".", "-")
        flat_underscore = customer_domain.replace(".", "_")
        return (self.cname_pattern
                .replace("{domain}", customer_domain)
                .replace("{dash}", flat_dash)
                .replace("{underscore}", flat_underscore))

    def deploy(self, world: World) -> None:
        if self.web_server is not None:
            return
        ip = world.fresh_ip("web")
        self.web_server = WebServer(f"policyhost.{self.sld}", ip,
                                    world.network)
        # The provider's own wildcard certificate covers its canonical
        # hosts; per-customer mta-sts.<domain> certs are added as
        # customers onboard (ACME DV via the CNAME).
        own_cert = world.issue_cert([self.sld, f"*.{self.sld}"],
                                    lifetime_days=365)
        self.web_server.tls.install(f"*.{self.sld}", own_cert, default=True)

    # -- customer lifecycle ------------------------------------------------

    def onboard(self, world: World, customer_domain: str,
                policy: Policy) -> None:
        """Host *customer_domain*'s policy and obtain its DV cert.

        Certificate issuance goes through the ACME domain-validation
        flow: it succeeds only when ``mta-sts.<customer>`` genuinely
        resolves to this provider (the CNAME the customer must
        publish, §2.5).  A customer who signs up without pointing the
        CNAME at us gets no certificate — their policy host answers
        with a fatal TLS alert, the §4.3.3 "SSL alert" class.
        """
        from repro.pki.acme import AcmeChallengeError

        assert self.web_server is not None, "provider not deployed"
        policy_host = f"mta-sts.{customer_domain}"
        try:
            cert = world.acme.issue_dv([policy_host],
                                       {self.web_server.ip.text})
        except AcmeChallengeError:
            self.acme_failures.append(customer_domain)
        else:
            self.web_server.tls.install(policy_host, cert)
        text = render_policy(policy)
        self.hosted_policies[customer_domain] = text
        self.web_server.host_policy(customer_domain, text)

    def update_policy(self, customer_domain: str, policy: Policy) -> None:
        assert self.web_server is not None
        text = render_policy(policy)
        self.hosted_policies[customer_domain] = text
        self.web_server.host_policy(customer_domain, text)

    def customer_opts_out(self, world: World, customer_domain: str) -> None:
        """Apply this provider's documented opt-out behaviour."""
        assert self.web_server is not None
        policy_host = f"mta-sts.{customer_domain}"
        previous = self.hosted_policies.pop(customer_domain, "")
        self.opted_out[customer_domain] = previous

        if self.opt_out is OptOutBehavior.NXDOMAIN:
            # The canonical name the customer's CNAME points at stops
            # resolving; the provider also stops serving and renewing.
            self.web_server.unhost_policy(customer_domain)
            self.web_server.tls.uninstall(policy_host)
            self._withdraw_canonical_dns(world, customer_domain)
        elif self.opt_out is OptOutBehavior.REISSUE_CERT_EMPTY_POLICY:
            # DMARCReport: valid cert, empty policy body -> parse failure,
            # treated by senders like mode=none.
            self.web_server.host_policy(customer_domain, "")
        elif self.opt_out is OptOutBehavior.REISSUE_CERT_STALE_POLICY:
            # Cert keeps renewing; the policy body freezes as-is.
            self.web_server.host_policy(customer_domain, previous)
        elif self.opt_out is OptOutBehavior.REJECT_MAIL_STALE_POLICY:
            # Tutanota: policy untouched; the MX rejects the customer's
            # mail.  Certificate renewal status is unknown (the paper got
            # no answer), observed as certificates eventually expiring.
            self.web_server.host_policy(customer_domain, previous)

    def _canonical_zone(self, world: World, canonical: str,
                        *, create: bool) -> Optional[tuple]:
        """The (zone, name) pair holding one canonical host's records.

        The canonical host may live under a different registrable
        domain than :attr:`sld` (Tutanota delegates policy hosting to
        ``_mta-sts.tutanota.de`` while its web identity is
        ``tutanota.com``), so the zone is derived from the host itself.
        """
        from repro.dns.name import effective_sld

        name = DnsName.try_parse(canonical)
        if name is None:
            return None
        apex = effective_sld(name)
        if apex is None:
            return None
        server = world.server_for(apex.text)
        if server is None:
            if not create:
                return None
            server = world.host_zone(Zone(apex=apex))
        zone = server.zone_for(apex)
        if zone is None:
            if not create:
                return None
            zone = Zone(apex=apex)
            server.add_zone(zone)
        return zone, name

    def _withdraw_canonical_dns(self, world: World,
                                customer_domain: str) -> None:
        canonical = self.canonical_host_for(customer_domain)
        located = self._canonical_zone(world, canonical, create=False)
        if located is not None:
            zone, name = located
            zone.remove(name, RRType.A)

    def publish_canonical_dns(self, world: World,
                              customer_domain: str) -> None:
        """Ensure the canonical per-customer host resolves to us."""
        assert self.web_server is not None
        canonical = self.canonical_host_for(customer_domain)
        located = self._canonical_zone(world, canonical, create=True)
        if located is None:
            return
        zone, name = located
        if not zone.lookup(name, RRType.A):
            zone.add(ARecord(name, 3600, self.web_server.ip))


def table2_providers() -> List[PolicyHostProvider]:
    """The paper's Table 2, in descending customer-count order.

    The ``{dash}``/``{underscore}``/``{domain}`` placeholders encode
    each provider's observed CNAME pattern for customer ``a.com``.
    """
    return [
        PolicyHostProvider(
            name="Tutanota", sld="tutanota.com",
            cname_pattern="_mta-sts.tutanota.de",
            opt_out=OptOutBehavior.REJECT_MAIL_STALE_POLICY,
            email_hosting_support=True),
        PolicyHostProvider(
            name="DMARCReport", sld="dmarcinput.com",
            cname_pattern="{dash}.mta-sts.dmarcinput.com",
            opt_out=OptOutBehavior.REISSUE_CERT_EMPTY_POLICY),
        PolicyHostProvider(
            name="PowerDMARC", sld="mta-sts.tech",
            cname_pattern="{dash}._mta.mta-sts.tech",
            opt_out=OptOutBehavior.NXDOMAIN),
        PolicyHostProvider(
            name="EasyDMARC", sld="easydmarc.pro",
            cname_pattern="{underscore}__mta_sts.easydmarc.pro",
            opt_out=OptOutBehavior.REISSUE_CERT_STALE_POLICY),
        PolicyHostProvider(
            name="Mailhardener", sld="mailhardener.com",
            cname_pattern="{domain}._mta-sts.mailhardener.com",
            opt_out=OptOutBehavior.NXDOMAIN),
        PolicyHostProvider(
            name="URIports", sld="uriports.com",
            cname_pattern="{dash}._mta-sts.uriports.com",
            opt_out=OptOutBehavior.NXDOMAIN),
        PolicyHostProvider(
            name="Sendmarc", sld="sdmarc.net",
            cname_pattern="{domain}._mta-sts.sdmarc.net",
            opt_out=OptOutBehavior.REISSUE_CERT_STALE_POLICY),
        PolicyHostProvider(
            name="OnDMARC", sld="ondmarc.com",
            cname_pattern="_mta-sts.{domain}._mta-sts.smart.ondmarc.com",
            opt_out=OptOutBehavior.REISSUE_CERT_STALE_POLICY),
    ]


def generic_providers() -> List[PolicyHostProvider]:
    """The long tail of smaller CNAME-delegating policy hosts."""
    return [
        PolicyHostProvider(
            name=f"GenericSTS{i}", sld=f"stshost{i}.net",
            cname_pattern="{dash}.mta-sts.stshost" + str(i) + ".net",
            opt_out=OptOutBehavior.NXDOMAIN)
        for i in (1, 2, 3)
    ]


#: Table 2's customer counts at the paper's final snapshot (2024-09-29).
TABLE2_DOMAIN_COUNTS = {
    "Tutanota": 7614,
    "DMARCReport": 7293,
    "PowerDMARC": 3753,
    "EasyDMARC": 2222,
    "Mailhardener": 1558,
    "URIports": 1100,
    "Sendmarc": 805,
    "OnDMARC": 451,
}


def default_email_providers() -> List[EmailProvider]:
    """A provider mix mirroring the operators the paper names."""
    return [
        EmailProvider("Google", "google.com",
                      mx_hostnames=["aspmx.l.google.com",
                                    "alt1.aspmx.l.google.com"]),
        EmailProvider("Microsoft", "outlook.com",
                      mx_hostnames=["mail.protection.outlook.com"]),
        EmailProvider("Tutanota", "tutanota.de",
                      mx_hostnames=["mail.tutanota.de"]),
        EmailProvider("Yahoo", "yahoodns.net",
                      mx_hostnames=["mta5.am0.yahoodns.net",
                                    "mta6.am0.yahoodns.net"]),
        EmailProvider("MxRouting", "mxrouting.net",
                      mx_hostnames=["filter1.mxrouting.net",
                                    "filter2.mxrouting.net"],
                      cert_failure_rate=0.39),
        EmailProvider("CheapMail", "cheapmail.net",
                      mx_hostnames=["in1.cheapmail.net",
                                    "in2.cheapmail.net"]),
        EmailProvider("Lucidgrow", "lucidgrow.com",
                      assigns_unique_mx_per_customer=True),
        EmailProvider("MxAscen", "mxascen.com",
                      mx_hostnames=["mx.l.mxascen.com"]),
    ]
