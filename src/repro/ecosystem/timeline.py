"""The longitudinal simulator.

The paper's measurement has two cadences:

* **weekly DNS snapshots** (Sep 2021 – Sep 2024) feeding the adoption
  curves (Figures 2/12 and Table 1) — computed analytically from the
  domain plans, no infrastructure needed;
* **monthly component scans** (Nov 2023 – Sep 2024) that fetch
  policies and probe MX hosts (Figures 4-10) — for these the timeline
  *materialises* a fresh :class:`~repro.ecosystem.world.World` per
  snapshot, deploys every domain adopted by that date with its
  scheduled faults active, and hands the world to the scanner.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.clock import Instant, WEEK, monthly_instants
from repro.core.policy import Policy, PolicyMode
from repro.ecosystem.deployment import (
    DeployedDomain, DomainSpec, deploy_domain, undeploy_domain,
)
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.ecosystem.population import (
    DomainPlan, PopulationConfig, TldPopulation, generate_population,
    partition_names,
)
from repro.ecosystem.providers import (
    EmailProvider, OptOutBehavior, PolicyHostProvider,
    default_email_providers, generic_providers, table2_providers,
)
from repro.ecosystem.world import World

SCAN_START = Instant.from_date(2023, 11, 7)
SCAN_END = Instant.from_date(2024, 9, 29)
SERIES_START = Instant.from_date(2021, 9, 9)
SERIES_END = Instant.from_date(2024, 9, 29)


@dataclass
class TimelineConfig:
    population: PopulationConfig = field(default_factory=PopulationConfig)


def population_to_dict(config: PopulationConfig) -> dict:
    """The JSON-serialisable form of a population config.

    Checkpointed campaign state records this so a resumed (or offline)
    run can prove it is continuing the *same* campaign and rebuild an
    identical timeline without the caller re-supplying scale/seed.
    """
    return asdict(config)


def population_from_dict(data: Optional[dict]) -> PopulationConfig:
    """Inverse of :func:`population_to_dict`; unknown keys are ignored
    so configs persisted by newer writers still load."""
    known = {f.name for f in fields(PopulationConfig)}
    return PopulationConfig(**{key: value for key, value in
                               (data or {}).items() if key in known})


def timeline_from_population(data: Optional[dict]) -> "EcosystemTimeline":
    """An :class:`EcosystemTimeline` rebuilt from persisted state."""
    return EcosystemTimeline(TimelineConfig(population_from_dict(data)))


@dataclass
class MaterializedSnapshot:
    """One scan month's live world plus per-domain handles."""

    month_index: int
    instant: Instant
    world: World
    deployed: Dict[str, DeployedDomain]
    policy_providers: Dict[str, PolicyHostProvider]
    email_providers: Dict[str, EmailProvider]
    plans: Dict[str, DomainPlan]
    #: World-build churn behind this snapshot (``deployed_new``,
    #: ``redeployed``, ``certs_renewed``, ``full_rebuild``) — the
    #: campaign monitor's view of how much the world moved this month.
    build_stats: Dict[str, int] = field(default_factory=dict)


class EcosystemTimeline:
    """Owns the domain plans and materialises scan snapshots."""

    def __init__(self, config: Optional[TimelineConfig] = None):
        self.config = config or TimelineConfig()
        self.populations: Dict[str, TldPopulation] = generate_population(
            self.config.population)
        self.scan_instants: List[Instant] = list(
            monthly_instants(SCAN_START, SCAN_END))
        if self.scan_instants[-1] < SCAN_END:
            self.scan_instants.append(SCAN_END)

    # -- analytic weekly series (no infrastructure) ---------------------

    def week_of(self, instant: Instant) -> int:
        return max(0, (instant - SERIES_START).seconds // WEEK.seconds)

    def weekly_instants(self) -> List[Instant]:
        out = []
        current = SERIES_START
        while current <= SERIES_END:
            out.append(current)
            current = current + WEEK
        return out

    def all_plans(self) -> List[DomainPlan]:
        return [plan for population in self.populations.values()
                for plan in population.plans]

    def adoption_series(self, tld: str) -> List[Tuple[Instant, int, float]]:
        """Weekly (instant, count, percent-of-MX-domains) for one TLD.

        This is Figure 2's data: the share of the TLD's MX-publishing
        domains that carry an MTA-STS record.
        """
        population = self.populations[tld]
        scaled_total = max(
            1, round(population.mx_domain_total * self.config.population.scale))
        series = []
        for instant in self.weekly_instants():
            week = self.week_of(instant)
            count = sum(1 for plan in population.plans
                        if plan.adopted_by_week(week))
            series.append((instant, count, 100.0 * count / scaled_total))
        return series

    def tlsrpt_series(self, tld: str) -> List[Tuple[Instant, float, float]]:
        """Figure 12: weekly TLSRPT adoption.

        Returns (instant, % of MX domains with TLSRPT, % of MTA-STS
        domains with TLSRPT).
        """
        population = self.populations[tld]
        scaled_total = max(
            1, round(population.mx_domain_total * self.config.population.scale))
        series = []
        for instant in self.weekly_instants():
            week = self.week_of(instant)
            sts_plans = [p for p in population.plans
                         if p.adopted_by_week(week)]
            sts_with_rpt = sum(1 for p in sts_plans
                               if p.has_tlsrpt_at_week(week))
            only = (population.tlsrpt_only_weekly[week]
                    if week < len(population.tlsrpt_only_weekly) else
                    population.tlsrpt_only_weekly[-1])
            total_rpt = only + sts_with_rpt
            pct_of_mx = 100.0 * total_rpt / scaled_total
            pct_of_sts = (100.0 * sts_with_rpt / len(sts_plans)
                          if sts_plans else 0.0)
            series.append((instant, pct_of_mx, pct_of_sts))
        return series

    def table1_rows(self) -> List[dict]:
        """Table 1: per-TLD domain totals and final MTA-STS counts."""
        rows = []
        final_week = self.week_of(SERIES_END)
        for tld, population in self.populations.items():
            if tld not in ("com", "net", "org", "se"):
                continue
            scaled_total = max(
                1, round(population.mx_domain_total
                         * self.config.population.scale))
            count = sum(1 for plan in population.plans
                        if plan.adopted_by_week(final_week))
            rows.append({
                "tld": tld,
                "mx_domains": scaled_total,
                "sts_domains": count,
                "sts_percent": 100.0 * count / scaled_total,
            })
        return rows

    # -- materialisation -------------------------------------------------------

    def materialize(self, month_index: int,
                    shard: Optional[Tuple[int, int]] = None
                    ) -> MaterializedSnapshot:
        """Build the live world for scan month *month_index* from
        scratch (the reference, slow path; see
        :class:`IncrementalMaterializer` for the delta-applying one).

        With ``shard=(index, count)`` the snapshot keeps only shard
        ``index`` of ``count`` canonical-order slices of the adopted
        domains (see :func:`~repro.ecosystem.population.partition_names`)
        — the process scan backend's per-worker view.  Determinism
        demands that *every* adopted plan still be deployed and faulted
        in the full canonical sequence (IP-pool allocation order, cert
        issuance order, and the resolver-cache warmth left by ACME
        validation are all byte-identical to a serial build by
        construction); out-of-shard domains are then immediately
        undeployed, releasing their zones, listeners, and policies so
        the worker's retained world scales with the shard, not the
        population.  The replicated build CPU is the price of exactness
        — the Amdahl ceiling the bench records.
        """
        return self._snapshot(self._build_full(month_index, shard=shard))

    def _build_full(self, month_index: int,
                    shard: Optional[Tuple[int, int]] = None) -> "_WorldState":
        instant = self.scan_instants[month_index]
        week = self.week_of(instant)
        world = World(start=instant)

        state = _WorldState(
            world=world, month_index=month_index,
            policy_providers={p.name: p for p in
                              table2_providers() + generic_providers()},
            email_providers={p.name: p for p in default_email_providers()})
        # The misconfiguration injector consults this registry when a
        # domain migrates between hosting providers (OUTDATED_POLICY).
        world.email_providers = state.email_providers

        adopted = [plan for plan in self.all_plans()
                   if plan.adopted_by_week(week)]
        keep = None
        if shard is not None:
            index, count = shard
            if count < 1:
                raise ValueError("shard count must be >= 1")
            if not 0 <= index < count:
                raise ValueError(f"shard index {index} outside [0, {count})")
            slices = partition_names([plan.name for plan in adopted], count)
            keep = set(slices[index]) if index < len(slices) else set()

        for plan in adopted:
            self._deploy_plan(state, plan, week, month_index)
            if keep is not None and plan.name not in keep:
                deployed = state.deployed.pop(plan.name)
                state.plans.pop(plan.name)
                state.signatures.pop(plan.name)
                undeploy_domain(world, deployed)
        # ``deployed_new`` reports the deploys *performed*, which under
        # a shard build is still the full adopted count — every worker
        # therefore reports the same build churn a serial build would,
        # keeping committed build_stats backend-independent.
        state.last_build_stats = {
            "deployed_new": len(adopted), "redeployed": 0,
            "certs_renewed": 0, "full_rebuild": 1,
        }
        return state

    def _deploy_plan(self, state: "_WorldState", plan: DomainPlan,
                     week: int, month_index: int) -> None:
        spec = self._spec_for(plan, week, month_index, state.world,
                              state.policy_providers, state.email_providers,
                              state.boutique_hosts)
        domain = deploy_domain(state.world, spec)
        for scheduled in plan.faults_at(month_index):
            apply_fault(state.world, domain, scheduled.fault,
                        mx_index=scheduled.mx_index)
        state.deployed[plan.name] = domain
        state.plans[plan.name] = plan
        state.signatures[plan.name] = _plan_signature(plan, week, month_index)

    def _snapshot(self, state: "_WorldState") -> MaterializedSnapshot:
        return MaterializedSnapshot(
            month_index=state.month_index,
            instant=self.scan_instants[state.month_index],
            world=state.world, deployed=state.deployed,
            policy_providers=state.policy_providers,
            email_providers=state.email_providers, plans=state.plans,
            build_stats=dict(state.last_build_stats))

    def _spec_for(self, plan: DomainPlan, week: int, month_index: int,
                  world: World,
                  policy_providers: Dict[str, PolicyHostProvider],
                  email_providers: Dict[str, EmailProvider],
                  boutique_hosts: Dict[str, PolicyHostProvider]
                  ) -> DomainSpec:
        email_provider = None
        if plan.email_provider is not None:
            email_provider = email_providers.get(plan.email_provider)
            if email_provider is None:
                email_provider = _flawed_provider(
                    plan.email_provider, world, email_providers)
                email_providers[plan.email_provider] = email_provider

        policy_provider = None
        if plan.policy_provider is not None:
            policy_provider = policy_providers[plan.policy_provider]
        elif plan.boutique_policy_host is not None:
            policy_provider = boutique_hosts.get(plan.boutique_policy_host)
            if policy_provider is None:
                policy_provider = PolicyHostProvider(
                    name=plan.boutique_policy_host,
                    sld=plan.boutique_policy_host,
                    cname_pattern="{dash}." + plan.boutique_policy_host,
                    opt_out=OptOutBehavior.NXDOMAIN,
                    delegate_via_cname=False)
                boutique_hosts[plan.boutique_policy_host] = policy_provider

        spec = DomainSpec(
            domain=plan.name,
            dns_provider_sld="dns-provider.net" if plan.dns_third_party else None,
            email_provider=email_provider,
            self_mx_count=plan.self_mx_count,
            policy_provider=policy_provider,
            record_id=f"id{plan.adoption_week:04d}",
        )
        spec.policy = Policy(
            version="STSv1", mode=plan.mode, max_age=604800,
            mx_patterns=tuple(spec.intended_mx()))
        if plan.has_tlsrpt_at_week(week):
            from repro.core.tlsrpt import TlsRptRecord
            spec.tlsrpt = TlsRptRecord(
                "TLSRPTv1", (f"mailto:tls-reports@{plan.name}",))
        return spec


@dataclass
class _WorldState:
    """The long-lived build context behind one (possibly incremental)
    materialisation: the world plus every handle needed to diff it
    against the next month's plan set."""

    world: World
    month_index: int
    policy_providers: Dict[str, PolicyHostProvider]
    email_providers: Dict[str, EmailProvider]
    boutique_hosts: Dict[str, PolicyHostProvider] = field(default_factory=dict)
    deployed: Dict[str, DeployedDomain] = field(default_factory=dict)
    plans: Dict[str, DomainPlan] = field(default_factory=dict)
    #: domain -> the deployment-relevant signature it was built with
    signatures: Dict[str, tuple] = field(default_factory=dict)
    #: churn counters of the most recent (full or delta) build
    last_build_stats: Dict[str, int] = field(default_factory=dict)


def _plan_signature(plan: DomainPlan, week: int, month_index: int) -> tuple:
    """Everything about a plan's materialisation that can change from
    one scan month to the next.

    A plan's spec is otherwise a constant function of the plan (record
    id, mode, providers, MX layout), so a domain only needs redeploying
    when its TLSRPT record flips or its set of active faults changes.
    """
    return (plan.has_tlsrpt_at_week(week),
            tuple(sorted((f.fault.value,
                          -1 if f.mx_index is None else f.mx_index)
                         for f in plan.faults_at(month_index))))


class IncrementalMaterializer:
    """Materialises consecutive scan months by diffing, not rebuilding.

    The from-scratch :meth:`EcosystemTimeline.materialize` rebuilds the
    entire simulated internet for every scan month, although only a few
    percent of domains change between consecutive months (new
    adoptions, fault onsets, TLSRPT flips, the event cohorts).  This
    materializer keeps one long-lived world and, per month, advances
    the clock, renews lapsed certificates (the role monthly rebuilding
    played implicitly), deploys newly adopted domains, and
    redeploys exactly the domains whose :func:`_plan_signature`
    changed.

    Equivalence with full rebuilds is by construction *modulo IP
    addresses* (the allocation order differs, the sharing structure —
    which drives entity classification — does not) and certificate
    validity windows (fresh versus renewed, both valid); every other
    snapshot field is identical, which the equivalence tests assert
    month by month.

    ``full_rebuild=True`` is the escape hatch: it discards the state
    and rebuilds from scratch, as does any non-monotonic month request.
    """

    def __init__(self, timeline: EcosystemTimeline):
        self._timeline = timeline
        self._state: Optional[_WorldState] = None

    def materialize(self, month_index: int,
                    *, full_rebuild: bool = False) -> MaterializedSnapshot:
        timeline = self._timeline
        state = self._state
        if (full_rebuild or state is None
                or month_index <= state.month_index):
            self._state = timeline._build_full(month_index)
            return timeline._snapshot(self._state)

        previous_instant = timeline.scan_instants[state.month_index]
        instant = timeline.scan_instants[month_index]
        week = timeline.week_of(instant)
        world = state.world
        world.clock.advance_to(instant)
        # A fresh world starts with an empty resolver cache; every TTL
        # in the simulation is shorter than a scan interval anyway.
        world.resolver.flush_cache()
        certs_renewed = world.renew_certificates(valid_at=previous_instant)

        deployed_new = redeployed = 0
        for plan in timeline.all_plans():
            if not plan.adopted_by_week(week):
                continue
            existing = state.deployed.get(plan.name)
            if existing is None:
                timeline._deploy_plan(state, plan, week, month_index)
                deployed_new += 1
                continue
            signature = _plan_signature(plan, week, month_index)
            if signature != state.signatures[plan.name]:
                undeploy_domain(world, existing)
                timeline._deploy_plan(state, plan, week, month_index)
                redeployed += 1
        state.month_index = month_index
        state.last_build_stats = {
            "deployed_new": deployed_new, "redeployed": redeployed,
            "certs_renewed": int(certs_renewed), "full_rebuild": 0,
        }
        return timeline._snapshot(state)


_FLAWED_FAULTS = {
    "mx-cert-cn-mismatch": Fault.MX_CERT_CN_MISMATCH,
    "mx-cert-self-signed": Fault.MX_CERT_SELF_SIGNED,
    "mx-cert-expired": Fault.MX_CERT_EXPIRED,
}


def _flawed_provider(name: str, world: World,
                     email_providers: Dict[str, EmailProvider]
                     ) -> EmailProvider:
    """Build a broken MX *pool* inside a large named provider.

    *name* looks like ``MxRouting!mx-cert-cn-mismatch-partial``: the
    customers of this pool get MX hostnames under the base provider's
    registrable domain (so entity classification still sees one popular
    third party), but the pool's servers present broken certificates.
    """
    base_name, _, body = name.partition("!")
    base = email_providers[base_name]
    if body.endswith("-all"):
        fault_key, all_mx = body[:-len("-all")], True
    else:
        fault_key, all_mx = body[:-len("-partial")], False
    fault = _FLAWED_FAULTS[fault_key]
    tag = fault_key.replace("mx-cert-", "").replace("-", "")
    tag += "a" if all_mx else "p"
    provider = EmailProvider(
        name, base.sld,
        mx_hostnames=[f"pool-{tag}1.{base.sld}", f"pool-{tag}2.{base.sld}"])
    provider.deploy(world)

    targets = provider.mx_hosts if all_mx else provider.mx_hosts[:1]
    for host in targets:
        if fault is Fault.MX_CERT_CN_MISMATCH:
            cert = world.issue_cert([f"legacy.{base.sld}"])
        elif fault is Fault.MX_CERT_EXPIRED:
            cert = world.issue_cert([host.hostname], lifetime_days=90,
                                    backdate_days=150)
        else:
            from repro.pki.certificate import CertTemplate, make_self_signed
            cert = make_self_signed(CertTemplate([host.hostname]),
                                    world.now())
        host.tls.install(host.hostname, cert, default=True)
    return provider
