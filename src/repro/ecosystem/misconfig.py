"""The misconfiguration injector.

Every error class the paper observes in the wild (Figures 4-8) exists
here as a :class:`Fault` that :func:`apply_fault` can inject into a
deployed domain.  Faults mutate real simulated infrastructure — they
break the DNS record text, swap certificates, close ports, corrupt
policy bodies, or desynchronise mx patterns — so the scanner
*discovers* them the same way the paper's scanner did, rather than
being told about them.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.policy import Policy, PolicyMode, render_policy
from repro.dns.name import DnsName
from repro.dns.records import ARecord, RRType, TxtRecord
from repro.ecosystem.deployment import DeployedDomain
from repro.ecosystem.world import World
from repro.netsim.network import TcpBehavior
from repro.pki.certificate import CertTemplate, make_self_signed
from repro.smtp.server import SMTP_PORT
from repro.web.server import HTTPS_PORT


class Fault(enum.Enum):
    # -- DNS record faults (Figure 4 "DNS Records", §4.3.2) ---------------
    RECORD_MISSING_ID = "record-missing-id"
    RECORD_INVALID_ID = "record-invalid-id"
    RECORD_BAD_VERSION = "record-bad-version"
    RECORD_INVALID_EXTENSION = "record-invalid-extension"
    RECORD_DUPLICATE = "record-duplicate"

    # -- policy retrieval faults (Figure 5) ------------------------------
    POLICY_DNS_UNRESOLVABLE = "policy-dns-unresolvable"
    POLICY_TCP_CLOSED = "policy-tcp-closed"
    POLICY_TCP_TIMEOUT = "policy-tcp-timeout"
    POLICY_TLS_CN_MISMATCH = "policy-tls-cn-mismatch"
    POLICY_TLS_SELF_SIGNED = "policy-tls-self-signed"
    POLICY_TLS_EXPIRED = "policy-tls-expired"
    POLICY_TLS_NO_CERT = "policy-tls-no-cert"          # SSL alert class
    POLICY_HTTP_404 = "policy-http-404"
    POLICY_HTTP_500 = "policy-http-500"
    POLICY_SYNTAX_BAD_MX = "policy-syntax-bad-mx"
    POLICY_SYNTAX_EMPTY = "policy-syntax-empty"
    POLICY_SYNTAX_MISSING_MODE = "policy-syntax-missing-mode"

    # -- MX certificate faults (Figures 6/7) --------------------------------
    MX_CERT_CN_MISMATCH = "mx-cert-cn-mismatch"
    MX_CERT_SELF_SIGNED = "mx-cert-self-signed"
    MX_CERT_EXPIRED = "mx-cert-expired"

    # -- inconsistency faults (Figure 8) -------------------------------------
    MISMATCH_TLD = "mismatch-tld"
    MISMATCH_DOMAIN = "mismatch-domain"
    MISMATCH_3LD = "mismatch-3ld"
    MISMATCH_TYPO = "mismatch-typo"
    OUTDATED_POLICY = "outdated-policy"      # MX migrated, policy did not


#: Faults that make policy retrieval fail entirely, so no policy syntax
#: or inconsistency can be layered on top of them.
RETRIEVAL_BLOCKING = frozenset({
    Fault.POLICY_DNS_UNRESOLVABLE, Fault.POLICY_TCP_CLOSED,
    Fault.POLICY_TCP_TIMEOUT, Fault.POLICY_TLS_CN_MISMATCH,
    Fault.POLICY_TLS_SELF_SIGNED, Fault.POLICY_TLS_EXPIRED,
    Fault.POLICY_TLS_NO_CERT, Fault.POLICY_HTTP_404, Fault.POLICY_HTTP_500,
})


def apply_fault(world: World, deployed: DeployedDomain, fault: Fault,
                *, mx_index: Optional[int] = 0) -> None:
    """Inject *fault* into *deployed*.

    ``mx_index`` selects which MX host an MX-certificate fault targets
    (``None`` hits every MX, producing Figure 7's "all invalid" class).
    """
    domain = deployed.domain
    handler = _HANDLERS[fault]
    handler(world, deployed, mx_index)


# ---------------------------------------------------------------------------
# DNS record faults
# ---------------------------------------------------------------------------

def _record_missing_id(world, deployed, _):
    deployed.set_record("v=STSv1;")


def _record_invalid_id(world, deployed, _):
    # The paper: 61% of broken records carry an id the RFC forbids,
    # typically including '-'.
    deployed.set_record("v=STSv1; id=2024-01-01;")


def _record_bad_version(world, deployed, _):
    deployed.set_record(f"v=STS1; id={deployed.spec.record_id};")


def _record_invalid_extension(world, deployed, _):
    # The in-the-wild example quoted in §4.3.2.
    deployed.set_record("v=STSv1; id=1; mx: a.com; mode: testing;")


def _record_duplicate(world, deployed, _):
    name = DnsName.parse(f"_mta-sts.{deployed.domain}")
    deployed.zone.add(TxtRecord(name, 300, "v=STSv1; id=duplicate2;"))


# ---------------------------------------------------------------------------
# Policy retrieval faults
# ---------------------------------------------------------------------------

def _policy_dns_unresolvable(world, deployed, _):
    name = DnsName.parse(f"mta-sts.{deployed.domain}")
    deployed.zone.remove(name, RRType.A)
    deployed.zone.remove(name, RRType.CNAME)


def _policy_tcp(behavior: TcpBehavior):
    def inject(world, deployed, _):
        server = _policy_web_server(deployed)
        world.network.set_behavior(server.ip, HTTPS_PORT, behavior)
    return inject


def _policy_tls_cn_mismatch(world, deployed, _):
    # The certificate served for mta-sts.<domain> only covers the bare
    # domain — the dominant self-managed failure (94.5% of TLS errors).
    server = _policy_web_server(deployed)
    wrong = world.issue_cert([deployed.domain, f"www.{deployed.domain}"])
    host = f"mta-sts.{deployed.domain}"
    server.tls.uninstall(host)
    server.tls.install(host, wrong)


def _policy_tls_self_signed(world, deployed, _):
    server = _policy_web_server(deployed)
    host = f"mta-sts.{deployed.domain}"
    cert = make_self_signed(CertTemplate([host]), world.now())
    server.tls.install(host, cert)


def _policy_tls_expired(world, deployed, _):
    server = _policy_web_server(deployed)
    host = f"mta-sts.{deployed.domain}"
    cert = world.issue_cert([host], lifetime_days=90, backdate_days=120)
    server.tls.install(host, cert)


def _policy_tls_no_cert(world, deployed, _):
    server = _policy_web_server(deployed)
    server.tls.alert_for(f"mta-sts.{deployed.domain}")


def _policy_http_404(world, deployed, _):
    server = _policy_web_server(deployed)
    server.unhost_policy(deployed.domain)


def _policy_http_500(world, deployed, _):
    server = _policy_web_server(deployed)
    server.host_policy(deployed.domain, "internal error", status=500)


def _policy_syntax_bad_mx(world, deployed, _):
    # §4.3.3: 64% of syntax errors are invalid mx patterns — email
    # addresses, trailing dots, empty patterns.
    deployed.set_policy_text(
        "version: STSv1\r\nmode: testing\r\n"
        "mx: postmaster@" + deployed.domain + "\r\nmax_age: 604800\r\n")


def _policy_syntax_empty(world, deployed, _):
    deployed.set_policy_text("")


def _policy_syntax_missing_mode(world, deployed, _):
    mx_lines = "".join(f"mx: {m}\r\n" for m in deployed.spec.intended_mx())
    deployed.set_policy_text(
        "version: STSv1\r\n" + mx_lines + "max_age: 604800\r\n")


# ---------------------------------------------------------------------------
# MX certificate faults
# ---------------------------------------------------------------------------

def _mx_targets(deployed: DeployedDomain, mx_index: Optional[int]):
    hosts = deployed.mx_hosts
    if not hosts:
        return []
    if mx_index is None:
        return hosts
    return [hosts[mx_index % len(hosts)]]


def _mx_cert_cn_mismatch(world, deployed, mx_index):
    for host in _mx_targets(deployed, mx_index):
        wrong = world.issue_cert([f"legacy.{deployed.domain}"])
        host.tls.install(host.hostname, wrong, default=True)


def _mx_cert_self_signed(world, deployed, mx_index):
    for host in _mx_targets(deployed, mx_index):
        cert = make_self_signed(CertTemplate([host.hostname]), world.now())
        host.tls.install(host.hostname, cert, default=True)


def _mx_cert_expired(world, deployed, mx_index):
    for host in _mx_targets(deployed, mx_index):
        cert = world.issue_cert([host.hostname], lifetime_days=90,
                                backdate_days=150)
        host.tls.install(host.hostname, cert, default=True)


# ---------------------------------------------------------------------------
# Inconsistency faults — rewrite the policy's mx patterns
# ---------------------------------------------------------------------------

def _set_patterns(deployed: DeployedDomain, patterns: tuple) -> None:
    base = deployed.spec.effective_policy()
    policy = Policy(version=base.version, mode=base.mode,
                    max_age=base.max_age, mx_patterns=patterns)
    deployed.set_policy_text(render_policy(policy))


def _mismatch_tld(world, deployed, _):
    real = deployed.spec.intended_mx()
    swapped = tuple(_swap_tld(m) for m in real)
    _set_patterns(deployed, swapped)


def _swap_tld(hostname: str) -> str:
    head, _, tld = hostname.rpartition(".")
    replacement = {"com": "net", "net": "org", "org": "com",
                   "se": "nu"}.get(tld, "com")
    return f"{head}.{replacement}"


def _mismatch_domain(world, deployed, _):
    # Entirely unrelated patterns — the population Figure 9 digs into.
    _set_patterns(deployed, (f"mx.old-provider-{len(deployed.domain)}.net",))


def _mismatch_3ld(world, deployed, _):
    # 81.8% of 3LD+ mismatches put the mta-sts label into the pattern —
    # the RFC misunderstanding the paper highlights.
    real = deployed.spec.intended_mx()
    _set_patterns(deployed, tuple(f"mta-sts.{m}" for m in real))


def _mismatch_typo(world, deployed, _):
    real = deployed.spec.intended_mx()
    _set_patterns(deployed, tuple(_typo(m) for m in real))


def _typo(hostname: str) -> str:
    # Drop one character from the first label: edit distance 1 (<= 3).
    head, _, rest = hostname.partition(".")
    if len(head) > 2:
        head = head[:-1]
    else:
        head = head + "x"
    return f"{head}.{rest}" if rest else head


def _outdated_policy(world, deployed, _):
    """Migrate the MX records while the policy keeps the old patterns.

    The migration target lives under a *different* registrable domain,
    so the stale patterns classify as a complete-domain mismatch — the
    population Figure 9 then explains through historical MX records.
    Provider-hosted domains migrate to another hosting provider's
    shared farm (they stay "both outsourced", feeding Figure 10's
    split-management population); self-hosted ones move to a dedicated
    new host.
    """
    old_patterns = tuple(deployed.spec.intended_mx())
    if deployed.spec.email_provider is not None:
        target = _pick_migration_target(world, deployed.spec.email_provider)
        deployed.set_mx_records(list(target.mx_hostnames))
    else:
        new_sld = f"{deployed.domain.split('.')[0]}-mail.net"
        new_host = _standalone_mx(world, new_sld, deployed)
        deployed.set_mx_records([new_host])
    _set_patterns(deployed, old_patterns)


def _pick_migration_target(world, current_provider):
    """The provider a domain migrates *to*.

    Realistic migrations land on another large provider — that keeps
    the domain "both outsourced" for Figure 10 and the target popular
    enough for the entity heuristics.  The world's provider registry
    (attached by the timeline) is consulted when available; standalone
    worlds get a dedicated shared target farm.
    """
    from repro.ecosystem.providers import EmailProvider

    registry = getattr(world, "email_providers", None)
    if registry:
        target_name = ("Microsoft" if current_provider.name == "Google"
                       else "Google")
        target = registry.get(target_name)
        if target is not None:
            target.deploy(world)
            return target

    provider = getattr(world, "_migration_provider", None)
    if provider is None:
        provider = EmailProvider(
            "NewMailHosting", "newmail-hosting.net",
            mx_hostnames=["mx1.newmail-hosting.net",
                          "mx2.newmail-hosting.net"])
        provider.deploy(world)
        world._migration_provider = provider
    return provider


def _standalone_mx(world, new_sld: str, deployed) -> str:
    from repro.dns.records import SoaRecord
    from repro.dns.zone import Zone
    from repro.smtp.server import MxHost
    from repro.tls.handshake import TlsEndpoint

    new_host = f"mx.{new_sld}"
    ip = world.fresh_ip("mx")
    tls = TlsEndpoint()
    cert = world.issue_cert([new_host])
    tls.install(new_host, cert, default=True)
    deployed.mx_hosts.append(MxHost(new_host, ip, world.network, tls=tls))

    apex = DnsName.parse(new_sld)
    server = world.server_for(new_sld)
    if server is None:
        zone = Zone(apex=apex)
        zone.add(SoaRecord(apex))
        server = world.host_zone(zone)
    zone = server.zone_for(apex)
    assert zone is not None
    if not zone.lookup(DnsName.parse(new_host), RRType.A):
        zone.add(ARecord(DnsName.parse(new_host), 3600, ip))
    return new_host


def _policy_web_server(deployed: DeployedDomain):
    if deployed.policy_server is not None:
        return deployed.policy_server
    provider = deployed.spec.policy_provider
    if provider is None or provider.web_server is None:
        raise ValueError(f"{deployed.domain} has no policy server to break")
    return provider.web_server


_HANDLERS = {
    Fault.RECORD_MISSING_ID: _record_missing_id,
    Fault.RECORD_INVALID_ID: _record_invalid_id,
    Fault.RECORD_BAD_VERSION: _record_bad_version,
    Fault.RECORD_INVALID_EXTENSION: _record_invalid_extension,
    Fault.RECORD_DUPLICATE: _record_duplicate,
    Fault.POLICY_DNS_UNRESOLVABLE: _policy_dns_unresolvable,
    Fault.POLICY_TCP_CLOSED: _policy_tcp(TcpBehavior.REFUSE),
    Fault.POLICY_TCP_TIMEOUT: _policy_tcp(TcpBehavior.TIMEOUT),
    Fault.POLICY_TLS_CN_MISMATCH: _policy_tls_cn_mismatch,
    Fault.POLICY_TLS_SELF_SIGNED: _policy_tls_self_signed,
    Fault.POLICY_TLS_EXPIRED: _policy_tls_expired,
    Fault.POLICY_TLS_NO_CERT: _policy_tls_no_cert,
    Fault.POLICY_HTTP_404: _policy_http_404,
    Fault.POLICY_HTTP_500: _policy_http_500,
    Fault.POLICY_SYNTAX_BAD_MX: _policy_syntax_bad_mx,
    Fault.POLICY_SYNTAX_EMPTY: _policy_syntax_empty,
    Fault.POLICY_SYNTAX_MISSING_MODE: _policy_syntax_missing_mode,
    Fault.MX_CERT_CN_MISMATCH: _mx_cert_cn_mismatch,
    Fault.MX_CERT_SELF_SIGNED: _mx_cert_self_signed,
    Fault.MX_CERT_EXPIRED: _mx_cert_expired,
    Fault.MISMATCH_TLD: _mismatch_tld,
    Fault.MISMATCH_DOMAIN: _mismatch_domain,
    Fault.MISMATCH_3LD: _mismatch_3ld,
    Fault.MISMATCH_TYPO: _mismatch_typo,
    Fault.OUTDATED_POLICY: _outdated_policy,
}
