"""Synthetic popularity ranking (Figure 3).

The paper joins its MTA-STS census against the Tranco top-1M list and
finds adoption correlated with popularity: about 1.2% of the most
popular 10k domains with MX records publish MTA-STS records versus
about 0.4% for the least popular bin.  :class:`TrancoRanking`
generates a ranked population with a rank-dependent adoption
probability interpolating those anchors, which is all the figure
needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

TOP_BIN_ADOPTION = 0.012      # 1.2% in the top 10k
BOTTOM_BIN_ADOPTION = 0.004   # 0.4% in the bottom 10k
DEFAULT_LIST_SIZE = 1_000_000
DEFAULT_BIN_SIZE = 10_000


@dataclass
class TrancoRanking:
    """A synthetic ranked list of domains with MX records."""

    list_size: int = DEFAULT_LIST_SIZE
    bin_size: int = DEFAULT_BIN_SIZE
    seed: int = 20241101
    _adopters: List[bool] = field(default_factory=list, repr=False)

    def __post_init__(self):
        rng = random.Random(self.seed)
        self._adopters = [rng.random() < self.adoption_probability(rank)
                          for rank in range(1, self.list_size + 1)]

    def adoption_probability(self, rank: int) -> float:
        """P(MTA-STS | rank), decaying from the top to the bottom bin.

        The decay is convex (power-law-ish) — adoption drops quickly
        outside the very popular head, then flattens, matching the
        figure's shape.
        """
        fraction = (rank - 1) / max(1, self.list_size - 1)
        return (BOTTOM_BIN_ADOPTION
                + (TOP_BIN_ADOPTION - BOTTOM_BIN_ADOPTION)
                * (1.0 - fraction) ** 2.5)

    def has_sts(self, rank: int) -> bool:
        return self._adopters[rank - 1]

    def binned_adoption(self) -> List[Tuple[int, float]]:
        """Per-bin (start_rank, percent with MTA-STS) — Figure 3's series."""
        out = []
        for start in range(0, self.list_size, self.bin_size):
            window = self._adopters[start:start + self.bin_size]
            pct = 100.0 * sum(window) / len(window)
            out.append((start, pct))
        return out

    def top_bin_percent(self) -> float:
        return self.binned_adoption()[0][1]

    def bottom_bin_percent(self) -> float:
        return self.binned_adoption()[-1][1]
