"""The synthetic email ecosystem standing in for the paper's zone scans."""

from repro.ecosystem.world import World
from repro.ecosystem.providers import (
    EmailProvider, PolicyHostProvider, OptOutBehavior, table2_providers,
)
from repro.ecosystem.deployment import DomainSpec, DeployedDomain, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.ecosystem.population import PopulationConfig, TldPopulation, generate_population
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.ecosystem.tranco import TrancoRanking

__all__ = [
    "World",
    "EmailProvider", "PolicyHostProvider", "OptOutBehavior",
    "table2_providers",
    "DomainSpec", "DeployedDomain", "deploy_domain",
    "Fault", "apply_fault",
    "PopulationConfig", "TldPopulation", "generate_population",
    "EcosystemTimeline", "TimelineConfig",
    "TrancoRanking",
]
