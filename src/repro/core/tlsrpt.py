"""SMTP TLS Reporting records (RFC 8460; paper Appendix B).

A domain's TLSRPT policy lives in a TXT record at
``_smtp._tls.<domain>``:

    _smtp._tls.example.com IN TXT "v=TLSRPTv1; rua=mailto:tls@example.com"

The paper tracks TLSRPT adoption alongside MTA-STS (Figure 12); the
parser here validates the two fields the standard defines (``v`` and
``rua``, a comma-separated list of ``mailto:`` or ``https:`` URIs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dns.name import DnsName
from repro.dns.records import RRType, TxtRecord
from repro.dns.resolver import Resolver
from repro.errors import DnsError

_MAILTO_RE = re.compile(r"^mailto:[^@\s,!]+@[a-z0-9.-]+$", re.IGNORECASE)
_HTTPS_RE = re.compile(r"^https://\S+$", re.IGNORECASE)


@dataclass(frozen=True)
class TlsRptRecord:
    """A parsed TLSRPT record."""

    version: str
    rua: Tuple[str, ...]

    def render(self) -> str:
        return f"v={self.version}; rua={','.join(self.rua)}"


def parse_tlsrpt_record(text: str) -> Optional[TlsRptRecord]:
    """Parse one TXT string; returns None when invalid.

    Validity rules: must begin with ``v=TLSRPTv1``, must contain a
    ``rua`` field whose every URI is a well-formed ``mailto:`` or
    ``https:`` endpoint.
    """
    stripped = text.strip()
    if not stripped.startswith("v=TLSRPTv1"):
        return None
    rua: List[str] = []
    fields = [f.strip() for f in stripped.split(";") if f.strip()]
    if not fields or fields[0] != "v=TLSRPTv1":
        return None
    seen_rua = False
    for chunk in fields[1:]:
        key, _, value = chunk.partition("=")
        if key.strip().lower() != "rua":
            continue
        seen_rua = True
        for uri in value.split(","):
            uri = uri.strip()
            if not (_MAILTO_RE.match(uri) or _HTTPS_RE.match(uri)):
                return None
            rua.append(uri)
    if not seen_rua or not rua:
        return None
    return TlsRptRecord("TLSRPTv1", tuple(rua))


def lookup_tlsrpt(resolver: Resolver,
                  domain: str | DnsName) -> Optional[TlsRptRecord]:
    """Fetch and parse the TLSRPT record of *domain* (None if absent)."""
    domain_text = (domain.text if isinstance(domain, DnsName)
                   else domain).lower().rstrip(".")
    name = DnsName.parse(f"_smtp._tls.{domain_text}")
    try:
        answer = resolver.resolve(name, RRType.TXT)
    except DnsError:
        return None
    candidates = [r.text for r in answer.records if isinstance(r, TxtRecord)]
    sts_like = [t for t in candidates if t.strip().startswith("v=TLSRPTv1")]
    if len(sts_like) != 1:
        return None
    return parse_tlsrpt_record(sts_like[0])
