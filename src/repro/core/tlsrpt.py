"""SMTP TLS Reporting records and reports (RFC 8460; paper Appendix B).

A domain's TLSRPT policy lives in a TXT record at
``_smtp._tls.<domain>``:

    _smtp._tls.example.com IN TXT "v=TLSRPTv1; rua=mailto:tls@example.com"

The paper tracks TLSRPT adoption alongside MTA-STS (Figure 12); the
parser here validates the two fields the standard defines (``v`` and
``rua``, a comma-separated list of ``mailto:`` or ``https:`` URIs).

This module also carries the RFC 8460 §4 report data model —
:class:`FailureDetail`, :class:`PolicySummary`, :class:`TlsRptReport` —
used by the sending side (`repro.core.reporting`) and the delivery
campaign's TLSRPT pipeline.  Reports render to JSON two ways:
:meth:`TlsRptReport.to_json` (indented, human-facing) and
:meth:`TlsRptReport.to_canonical_json` (compact, sorted keys) — the
latter is the byte-identity surface the serial and threaded delivery
backends must agree on.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.clock import Instant
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import RRType, TxtRecord
from repro.dns.resolver import Resolver
from repro.errors import DnsError

_MAILTO_RE = re.compile(r"^mailto:[^@\s,!]+@[a-z0-9.-]+$", re.IGNORECASE)
_HTTPS_RE = re.compile(r"^https://\S+$", re.IGNORECASE)


@dataclass(frozen=True)
class TlsRptRecord:
    """A parsed TLSRPT record."""

    version: str
    rua: Tuple[str, ...]

    def render(self) -> str:
        return f"v={self.version}; rua={','.join(self.rua)}"


def parse_tlsrpt_record(text: str) -> Optional[TlsRptRecord]:
    """Parse one TXT string; returns None when invalid.

    Validity rules: must begin with ``v=TLSRPTv1``, must contain a
    ``rua`` field whose every URI is a well-formed ``mailto:`` or
    ``https:`` endpoint.
    """
    stripped = text.strip()
    if not stripped.startswith("v=TLSRPTv1"):
        return None
    rua: List[str] = []
    fields = [f.strip() for f in stripped.split(";") if f.strip()]
    if not fields or fields[0] != "v=TLSRPTv1":
        return None
    seen_rua = False
    for chunk in fields[1:]:
        key, _, value = chunk.partition("=")
        if key.strip().lower() != "rua":
            continue
        seen_rua = True
        for uri in value.split(","):
            uri = uri.strip()
            if not (_MAILTO_RE.match(uri) or _HTTPS_RE.match(uri)):
                return None
            rua.append(uri)
    if not seen_rua or not rua:
        return None
    return TlsRptRecord("TLSRPTv1", tuple(rua))


def lookup_tlsrpt(resolver: Resolver,
                  domain: str | DnsName) -> Optional[TlsRptRecord]:
    """Fetch and parse the TLSRPT record of *domain* (None if absent)."""
    domain_text = canonical_host(domain)
    try:
        # İ-style inputs casefold to non-LDH labels no zone can hold —
        # such a domain cannot publish a record, so the answer is
        # "absent", not a crash.
        name = DnsName.parse(f"_smtp._tls.{domain_text}")
    except ValueError:
        return None
    try:
        answer = resolver.resolve(name, RRType.TXT)
    except DnsError:
        return None
    candidates = [r.text for r in answer.records if isinstance(r, TxtRecord)]
    sts_like = [t for t in candidates if t.strip().startswith("v=TLSRPTv1")]
    if len(sts_like) != 1:
        return None
    return parse_tlsrpt_record(sts_like[0])


# ---------------------------------------------------------------------------
# The RFC 8460 §4 report data model
# ---------------------------------------------------------------------------

class ResultType(enum.Enum):
    """RFC 8460 §4.3 result types (the subset MTA-STS senders emit)."""

    STARTTLS_NOT_SUPPORTED = "starttls-not-supported"
    CERTIFICATE_HOST_MISMATCH = "certificate-host-mismatch"
    CERTIFICATE_EXPIRED = "certificate-expired"
    CERTIFICATE_NOT_TRUSTED = "certificate-not-trusted"
    VALIDATION_FAILURE = "validation-failure"
    STS_POLICY_FETCH_ERROR = "sts-policy-fetch-error"
    STS_POLICY_INVALID = "sts-policy-invalid"
    STS_WEBPKI_INVALID = "sts-webpki-invalid"


@dataclass
class FailureDetail:
    """One failure class observed against one receiving MX."""

    result_type: ResultType
    receiving_mx_hostname: str = ""
    failed_session_count: int = 0
    additional_info: str = ""

    def to_json_dict(self) -> dict:
        out = {"result-type": self.result_type.value,
               "failed-session-count": self.failed_session_count}
        if self.receiving_mx_hostname:
            out["receiving-mx-hostname"] = self.receiving_mx_hostname
        if self.additional_info:
            out["additional-information"] = self.additional_info
        return out


@dataclass
class PolicySummary:
    """Per-policy result block (RFC 8460 §4.4)."""

    policy_type: str                  # "sts" | "tlsa" | "no-policy-found"
    policy_domain: str
    policy_strings: Tuple[str, ...] = ()
    total_successful_sessions: int = 0
    total_failed_sessions: int = 0
    failure_details: List[FailureDetail] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "policy": {
                "policy-type": self.policy_type,
                "policy-domain": self.policy_domain,
                "policy-string": list(self.policy_strings),
            },
            "summary": {
                "total-successful-session-count":
                    self.total_successful_sessions,
                "total-failure-session-count": self.total_failed_sessions,
            },
            "failure-details": [d.to_json_dict()
                                for d in self.failure_details],
        }


@dataclass
class TlsRptReport:
    """A complete RFC 8460 report for one (sender, recipient, day)."""

    organization_name: str
    contact_info: str
    report_id: str
    window_start: Instant
    window_end: Instant
    policies: List[PolicySummary] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "organization-name": self.organization_name,
            "date-range": {
                "start-datetime": str(self.window_start),
                "end-datetime": str(self.window_end),
            },
            "contact-info": self.contact_info,
            "report-id": self.report_id,
            "policies": [p.to_json_dict() for p in self.policies],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def to_canonical_json(self) -> str:
        """Compact sorted-key rendering — the byte-identity surface of
        the delivery campaign's report artifacts."""
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def policy_domain(self) -> str:
        """The (first) recipient policy domain this report covers."""
        return self.policies[0].policy_domain if self.policies else ""

    @classmethod
    def from_json(cls, text: str) -> "TlsRptReport":
        data = json.loads(text)
        policies = []
        for block in data.get("policies", []):
            policy = block["policy"]
            summary = block["summary"]
            details = [
                FailureDetail(
                    result_type=ResultType(d["result-type"]),
                    receiving_mx_hostname=d.get("receiving-mx-hostname", ""),
                    failed_session_count=d["failed-session-count"],
                    additional_info=d.get("additional-information", ""))
                for d in block.get("failure-details", [])]
            policies.append(PolicySummary(
                policy_type=policy["policy-type"],
                policy_domain=policy["policy-domain"],
                policy_strings=tuple(policy.get("policy-string", ())),
                total_successful_sessions=summary[
                    "total-successful-session-count"],
                total_failed_sessions=summary[
                    "total-failure-session-count"],
                failure_details=details))
        return cls(
            organization_name=data["organization-name"],
            contact_info=data["contact-info"],
            report_id=data["report-id"],
            window_start=Instant.parse(
                data["date-range"]["start-datetime"].rstrip("Z")),
            window_end=Instant.parse(
                data["date-range"]["end-datetime"].rstrip("Z")),
            policies=policies)
