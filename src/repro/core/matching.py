"""MX pattern matching (RFC 8461 §4.1).

A policy's ``mx`` patterns constrain which MX hostnames a compliant
sender may hand mail to.  Matching rules:

* a plain pattern matches the identical hostname (case-insensitive,
  ignoring any trailing root dot);
* a ``*.`` wildcard matches exactly **one** additional leftmost label —
  ``*.example.com`` matches ``mx1.example.com`` but neither
  ``example.com`` itself nor ``a.b.example.com``.

This is the pivot of the paper's inconsistency analysis (Figures 8-10):
a domain whose actual MX records match none of its policy's patterns
fails validation, and in ``enforce`` mode loses mail.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.policy import Policy
from repro.dns.name import DnsName, canonical_host


# Kept as a module alias: the shared canonicaliser in repro.dns.name is
# the single source of truth for host comparison (casefold + empty-label
# guard), and an alias avoids a wrapper call on the per-MX match path.
_canonical = canonical_host


def mx_pattern_matches(pattern: str, mx_hostname: str | DnsName) -> bool:
    """Whether one mx pattern covers one MX hostname."""
    pattern = _canonical(pattern)
    hostname = _canonical(mx_hostname)
    if not pattern or not hostname:
        return False
    if pattern.startswith("*."):
        suffix = pattern[2:]
        if not suffix:
            return False
        labels = hostname.split(".")
        return (len(labels) >= 2 and bool(labels[0])
                and ".".join(labels[1:]) == suffix)
    return pattern == hostname


def policy_covers_mx(policy: Policy | Sequence[str],
                     mx_hostname: str | DnsName) -> bool:
    """Whether *any* pattern of the policy covers this MX hostname."""
    patterns = (policy.mx_patterns if isinstance(policy, Policy)
                else tuple(policy))
    return any(mx_pattern_matches(p, mx_hostname) for p in patterns)


def uncovered_mx_hosts(policy: Policy | Sequence[str],
                       mx_hostnames: Iterable[str | DnsName]) -> list[str]:
    """The MX hostnames not covered by any pattern (order preserved)."""
    return [_canonical(h) for h in mx_hostnames
            if not policy_covers_mx(policy, h)]


def unused_patterns(policy: Policy | Sequence[str],
                    mx_hostnames: Iterable[str | DnsName]) -> list[str]:
    """Patterns that match none of the domain's actual MX hostnames.

    Stale patterns left behind after a mail-server migration show up
    here — the population Figure 9 traces back through historical
    snapshots.
    """
    patterns = (policy.mx_patterns if isinstance(policy, Policy)
                else tuple(policy))
    hosts = [_canonical(h) for h in mx_hostnames]
    return [p for p in patterns
            if not any(mx_pattern_matches(p, h) for h in hosts)]
