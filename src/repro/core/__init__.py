"""MTA-STS (RFC 8461): records, policies, validation, caching, sending.

This package is the paper's primary subject.  It is deliberately free
of simulation details: parsers and matchers are pure functions, and
the pipeline classes take transports (resolver, HTTPS client, SMTP
probe) as constructor arguments, so the same code runs against the
in-memory internet in :mod:`repro.netsim` or any real transport a
user supplies.
"""

from repro.core.record import StsRecord, parse_sts_record, evaluate_txt_rrset
from repro.core.policy import (
    Policy, PolicyMode, parse_policy, render_policy, check_policy_text,
)
from repro.core.matching import mx_pattern_matches, policy_covers_mx
from repro.core.fetch import PolicyFetcher, PolicyFetchResult
from repro.core.validator import (
    DomainAssessment, MtaStsValidator, MxProbeSummary,
)
from repro.core.cache import PolicyCache, CachedPolicy
from repro.core.sender import MtaStsSender, SenderPolicyConfig
from repro.core.dane import TlsaVerdict, verify_dane, DaneValidator
from repro.core.tlsrpt import TlsRptRecord, parse_tlsrpt_record
from repro.core.lifecycle import (
    DeploymentPlan, RemovalPlan, plan_deployment, plan_removal,
    check_removal_sequence,
)
from repro.core.reporting import (
    ReportCollector, ReportInbox, ReportSubmitter, ResultType, TlsReport,
)
from repro.core.refresh import RefreshDaemon

__all__ = [
    "StsRecord", "parse_sts_record", "evaluate_txt_rrset",
    "Policy", "PolicyMode", "parse_policy", "render_policy",
    "check_policy_text",
    "mx_pattern_matches", "policy_covers_mx",
    "PolicyFetcher", "PolicyFetchResult",
    "DomainAssessment", "MtaStsValidator", "MxProbeSummary",
    "PolicyCache", "CachedPolicy",
    "MtaStsSender", "SenderPolicyConfig",
    "TlsaVerdict", "verify_dane", "DaneValidator",
    "TlsRptRecord", "parse_tlsrpt_record",
    "DeploymentPlan", "RemovalPlan", "plan_deployment", "plan_removal",
    "check_removal_sequence",
    "ReportCollector", "ReportInbox", "ReportSubmitter", "ResultType",
    "TlsReport", "RefreshDaemon",
]
