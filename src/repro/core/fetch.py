"""MTA-STS discovery and policy retrieval (RFC 8461 §3.3).

:class:`PolicyFetcher` composes the DNS record check with the staged
HTTPS fetch and the lenient policy parse, producing a single
:class:`PolicyFetchResult` that records where, if anywhere, the chain
broke.  The result's ``failed_stage`` uses the same
:class:`~repro.errors.PolicyFetchStage` axis as Figure 5, and its
``record_error`` covers Figure 4's "DNS Records" category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import trace
from repro.core.policy import Policy, PolicyCheck, check_policy_text
from repro.core.record import StsRecord, TxtRrsetEvaluation, evaluate_txt_rrset
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import RRType, TxtRecord
from repro.dns.resolver import Resolver
from repro.errors import (
    DnsError, NoData, NxDomain, PolicyFetchStage, StsRecordError, TlsFailure,
)
from repro.pki.certificate import Certificate
from repro.web.client import FetchOutcome, HttpsClient
from repro.web.server import WELL_KNOWN_STS_PATH


@dataclass
class PolicyFetchResult:
    """Everything learned while discovering and fetching one policy."""

    domain: str
    # DNS record stage
    txt_strings: List[str] = field(default_factory=list)
    record_eval: Optional[TxtRrsetEvaluation] = None
    dns_lookup_error: str = ""
    #: The ``_mta-sts`` TXT lookup failed on a fault-injected transient
    #: error (retry budget exhausted) — the record's absence is noise,
    #: not evidence about the domain's deployment.
    dns_transient: bool = False
    # HTTPS stage
    fetch: Optional[FetchOutcome] = None
    policy_host_cname: Optional[str] = None
    # Policy body stage
    policy_check: Optional[PolicyCheck] = None

    @property
    def sts_enabled(self) -> bool:
        """The domain publishes something at ``_mta-sts`` that looks STS."""
        return self.record_eval is not None and self.record_eval.signals_sts

    @property
    def record(self) -> Optional[StsRecord]:
        if self.record_eval is None:
            return None
        return self.record_eval.record

    @property
    def record_error(self) -> Optional[StsRecordError]:
        if self.record_eval is None or self.record_eval.valid:
            return None
        return self.record_eval.error

    @property
    def policy(self) -> Optional[Policy]:
        if self.policy_check is None:
            return None
        return self.policy_check.policy

    @property
    def failed_stage(self) -> Optional[PolicyFetchStage]:
        """Where retrieval failed, on Figure 5's axis (None = success)."""
        if self.fetch is None:
            return PolicyFetchStage.DNS if self.sts_enabled else None
        if self.fetch.failed_stage is not None:
            return self.fetch.failed_stage
        if self.policy_check is not None and not self.policy_check.valid:
            return PolicyFetchStage.SYNTAX
        return None

    @property
    def transient(self) -> bool:
        """Any stage died on a retry-exhausted injected fault."""
        return (self.dns_transient
                or (self.fetch is not None and self.fetch.transient))

    @property
    def tls_failure(self) -> Optional[TlsFailure]:
        return self.fetch.tls_failure if self.fetch is not None else None

    @property
    def policy_host_certificate(self) -> Optional[Certificate]:
        return self.fetch.certificate if self.fetch is not None else None

    @property
    def fully_valid(self) -> bool:
        return (self.record is not None
                and self.policy is not None
                and self.failed_stage is None)


class PolicyFetcher:
    """Discovers and fetches MTA-STS policies for domains."""

    def __init__(self, resolver: Resolver, https_client: HttpsClient):
        self._resolver = resolver
        self._https = https_client
        #: Full discovery pipelines run (record lookup + HTTPS fetch);
        #: surfaced by the scan instrumentation (``ScanStats``).
        self.fetch_count = 0

    def lookup_record(self, domain: str | DnsName) -> PolicyFetchResult:
        """Stage 1 only: the ``_mta-sts`` TXT lookup and evaluation."""
        domain_text = canonical_host(domain)
        result = PolicyFetchResult(domain=domain_text)
        label = DnsName.parse(f"_mta-sts.{domain_text}")
        try:
            answer = self._resolver.resolve(label, RRType.TXT)
        except (NxDomain, NoData) as exc:
            result.record_eval = evaluate_txt_rrset([])
            result.dns_lookup_error = str(exc)
            if trace.TRACING:
                trace.event("sts-record", outcome=str(exc))
            return result
        except DnsError as exc:
            result.record_eval = evaluate_txt_rrset([])
            result.dns_lookup_error = str(exc)
            result.dns_transient = getattr(exc, "transient", False)
            if trace.TRACING:
                trace.event("sts-record", outcome=str(exc),
                            transient=result.dns_transient)
            return result
        result.txt_strings = [
            r.text for r in answer.records if isinstance(r, TxtRecord)]
        result.record_eval = evaluate_txt_rrset(result.txt_strings)
        evaluation = result.record_eval
        if trace.TRACING:
            trace.event(
                "sts-record",
                outcome="valid" if evaluation.valid
                else (evaluation.error.value if evaluation.error
                      else "invalid"),
                signals_sts=evaluation.signals_sts)
        return result

    def fetch_policy(self, domain: str | DnsName,
                     *, even_if_record_invalid: bool = True
                     ) -> PolicyFetchResult:
        """The full discovery pipeline: TXT record, HTTPS fetch, parse.

        A compliant sender stops when the TXT record is absent; the
        paper's scanner (and this method with the default flag) still
        fetches the policy when the record is present but malformed, so
        every component's health is measured independently.
        """
        self.fetch_count += 1
        if trace.TRACING:
            trace.count("policy.fetches")
        result = self.lookup_record(domain)
        if not result.sts_enabled:
            return result
        if result.record is None and not even_if_record_invalid:
            return result

        policy_host = f"mta-sts.{result.domain}"
        cname = self._resolver.try_resolve(policy_host, RRType.CNAME)
        if cname is not None and cname.records:
            result.policy_host_cname = cname.records[0].target.text  # type: ignore[attr-defined]
        else:
            # The client follows CNAME chains during address resolution
            # anyway; record the delegation target if the A lookup
            # traversed one.
            answer = self._resolver.try_resolve(policy_host, RRType.A)
            if answer is not None and answer.cname_chain:
                result.policy_host_cname = answer.cname_chain[0].target.text
        if result.policy_host_cname and trace.TRACING:
            trace.event("policy-host-cname",
                        target=result.policy_host_cname)

        result.fetch = self._https.fetch(policy_host, WELL_KNOWN_STS_PATH)
        if result.fetch.ok and result.fetch.body is not None:
            result.policy_check = check_policy_text(result.fetch.body)
        return result
