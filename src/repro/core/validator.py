"""Receiving-side MTA-STS assessment.

:class:`MtaStsValidator` runs the complete health check the paper
performs for every MTA-STS-enabled domain (§4.2):

1. evaluate the ``_mta-sts`` TXT record;
2. fetch the policy over HTTPS with staged error reporting;
3. probe every MX host for STARTTLS and PKIX-valid certificates;
4. cross-check the policy's ``mx`` patterns against the actual MX
   records.

The resulting :class:`DomainAssessment` exposes the paper's four
misconfiguration categories (Figure 4), the per-stage policy-server
error (Figure 5), the per-MX certificate classes (Figures 6/7), and
the headline question: *would an MTA-STS-compliant sender fail to
deliver to this domain?* (the 3.2% / 640-domain finding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.fetch import PolicyFetcher, PolicyFetchResult
from repro.core.matching import policy_covers_mx, uncovered_mx_hosts
from repro.core.policy import Policy, PolicyMode
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import MxRecord, RRType
from repro.dns.resolver import Resolver
from repro.errors import MisconfigCategory, PolicyFetchStage
from repro.smtp.client import ProbeResult, SmtpProbe


@dataclass
class MxProbeSummary:
    """Aggregated view over a domain's MX probes."""

    results: List[ProbeResult] = field(default_factory=list)

    @property
    def mx_hostnames(self) -> List[str]:
        return [r.mx_hostname for r in self.results]

    @property
    def tls_capable(self) -> List[ProbeResult]:
        """MXes that established TLS at all (§4.1: only these are judged)."""
        return [r for r in self.results if r.tls_established]

    @property
    def any_invalid_cert(self) -> bool:
        return any(not r.cert_valid for r in self.tls_capable)

    @property
    def all_invalid_cert(self) -> bool:
        capable = self.tls_capable
        return bool(capable) and all(not r.cert_valid for r in capable)

    @property
    def partially_invalid_cert(self) -> bool:
        capable = self.tls_capable
        invalid = [r for r in capable if not r.cert_valid]
        return bool(invalid) and len(invalid) < len(capable)

    def failure_classes(self) -> List[str]:
        return sorted({r.failure_class() for r in self.tls_capable
                       if not r.cert_valid})


@dataclass
class DomainAssessment:
    """The complete MTA-STS health picture for one domain."""

    domain: str
    fetch_result: PolicyFetchResult
    mx_records: List[str] = field(default_factory=list)
    mx_probe: Optional[MxProbeSummary] = None

    # -- component verdicts -------------------------------------------------

    @property
    def sts_enabled(self) -> bool:
        return self.fetch_result.sts_enabled

    @property
    def record_valid(self) -> bool:
        return self.fetch_result.record is not None

    @property
    def policy(self) -> Optional[Policy]:
        return self.fetch_result.policy

    @property
    def policy_retrieval_ok(self) -> bool:
        stage = self.fetch_result.failed_stage
        return stage is None

    @property
    def policy_failed_stage(self) -> Optional[PolicyFetchStage]:
        return self.fetch_result.failed_stage

    @property
    def mx_certs_ok(self) -> bool:
        if self.mx_probe is None:
            return True
        return not self.mx_probe.any_invalid_cert

    @property
    def consistent(self) -> bool:
        """Whether at least one actual MX matches the policy's patterns.

        Following the paper, inconsistency is only judged when the other
        components yielded a policy and the domain has MX records; a
        domain with no retrievable policy is counted under the policy
        error instead.
        """
        if self.policy is None or not self.mx_records:
            return True
        return any(policy_covers_mx(self.policy, mx)
                   for mx in self.mx_records)

    @property
    def uncovered_mx(self) -> List[str]:
        if self.policy is None:
            return []
        return uncovered_mx_hosts(self.policy, self.mx_records)

    # -- paper-level categories ----------------------------------------------

    def misconfig_categories(self) -> List[MisconfigCategory]:
        """The Figure-4 categories this domain falls into (not exclusive)."""
        categories: List[MisconfigCategory] = []
        if self.sts_enabled and not self.record_valid:
            categories.append(MisconfigCategory.DNS_RECORD)
        if not self.policy_retrieval_ok:
            categories.append(MisconfigCategory.POLICY_RETRIEVAL)
        if not self.mx_certs_ok:
            categories.append(MisconfigCategory.MX_CERTIFICATE)
        if not self.consistent:
            categories.append(MisconfigCategory.INCONSISTENCY)
        return categories

    @property
    def misconfigured(self) -> bool:
        return bool(self.misconfig_categories())

    @property
    def delivery_failure_expected(self) -> bool:
        """Would a compliant sender in steady state fail to deliver?

        Per RFC 8461 this happens only when the policy is retrievable,
        its mode is ``enforce``, and either no MX matches the patterns
        or every matching MX fails certificate validation.  Broken
        record/policy retrieval degrades senders to opportunistic TLS
        (no cached policy) rather than failing delivery.
        """
        policy = self.policy
        if policy is None or policy.mode is not PolicyMode.ENFORCE:
            return False
        if not self.policy_retrieval_ok:
            return False
        if not self.mx_records:
            return False
        matching = [mx for mx in self.mx_records
                    if policy_covers_mx(policy, mx)]
        if not matching:
            return True
        if self.mx_probe is None:
            return False
        by_name = {r.mx_hostname: r for r in self.mx_probe.results}
        verdicts = [by_name.get(canonical_host(mx)) for mx in matching]
        usable = [v for v in verdicts if v is not None]
        if not usable:
            return False
        return all(not v.cert_valid for v in usable)


class MtaStsValidator:
    """Runs the full assessment for one domain."""

    def __init__(self, resolver: Resolver, fetcher: PolicyFetcher,
                 probe: Optional[SmtpProbe] = None):
        self._resolver = resolver
        self._fetcher = fetcher
        self._probe = probe

    def mx_hostnames(self, domain: str | DnsName) -> List[str]:
        if isinstance(domain, str):
            domain = DnsName.parse(domain)
        answer = self._resolver.try_resolve(domain, RRType.MX)
        if answer is None:
            return []
        records = sorted(
            (r for r in answer.records if isinstance(r, MxRecord)),
            key=lambda r: (r.preference, r.exchange.text))
        return [r.exchange.text for r in records]

    def assess(self, domain: str | DnsName,
               *, probe_mx: bool = True) -> DomainAssessment:
        domain_text = canonical_host(
            domain.text if isinstance(domain, DnsName) else domain)
        fetch_result = self._fetcher.fetch_policy(domain_text)
        assessment = DomainAssessment(domain_text, fetch_result)
        assessment.mx_records = self.mx_hostnames(domain_text)
        if probe_mx and self._probe is not None and assessment.mx_records:
            summary = MxProbeSummary(
                [self._probe.probe_host(mx) for mx in assessment.mx_records])
            assessment.mx_probe = summary
        return assessment
