"""MTA-STS lifecycle: deployment and removal procedures.

RFC 8461 (and the paper's §2.6) prescribes a four-step removal
sequence; skipping steps strands senders holding a cached ``enforce``
policy.  This module provides:

* :func:`plan_deployment` — the ordered steps to stand MTA-STS up;
* :func:`plan_removal` — the RFC's graceful tear-down;
* :func:`check_removal_sequence` — a linter that classifies an
  operator's actual step sequence (used by the ablation benchmark to
  quantify how much mail each shortcut loses).

Steps are symbolic (:class:`LifecycleStep`) so the ecosystem simulator
can replay them against live simulated infrastructure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.clock import DAY, Duration
from repro.core.policy import Policy, PolicyMode


class StepKind(enum.Enum):
    PUBLISH_RECORD = "publish-record"          # create/replace _mta-sts TXT
    PUBLISH_POLICY = "publish-policy"          # write the HTTPS policy file
    BUMP_RECORD_ID = "bump-record-id"
    WAIT = "wait"
    REMOVE_RECORD = "remove-record"
    REMOVE_POLICY = "remove-policy"
    REMOVE_POLICY_HOST = "remove-policy-host"  # drop mta-sts. A/CNAME


@dataclass(frozen=True)
class LifecycleStep:
    kind: StepKind
    policy: Optional[Policy] = None
    wait: Optional[Duration] = None
    note: str = ""


@dataclass
class DeploymentPlan:
    domain: str
    steps: List[LifecycleStep] = field(default_factory=list)


@dataclass
class RemovalPlan:
    domain: str
    steps: List[LifecycleStep] = field(default_factory=list)


def plan_deployment(domain: str, policy: Policy) -> DeploymentPlan:
    """The safe bring-up order: policy file first, then the record.

    Publishing the TXT record before the policy file is reachable makes
    compliant senders attempt (and fail) a fetch — harmless for
    delivery but noisy; the RFC's examples and the paper's survey
    discussion both treat policy-first as correct.
    """
    steps = [
        LifecycleStep(StepKind.PUBLISH_POLICY, policy=policy,
                      note="serve the policy at the well-known URI first"),
        LifecycleStep(StepKind.PUBLISH_RECORD,
                      note="then announce it via the _mta-sts TXT record"),
    ]
    return DeploymentPlan(domain, steps)


def plan_removal(domain: str, previous_policy: Policy,
                 *, none_max_age: int = 86_400) -> RemovalPlan:
    """RFC 8461's graceful removal (§2.6 of the paper).

    1. publish a new policy with mode ``none`` and a small max_age;
    2. bump the record id so senders refetch;
    3. wait max(previous max_age, new max_age);
    4. remove the record, the policy host, and the policy file.
    """
    none_policy = Policy(version="STSv1", mode=PolicyMode.NONE,
                         max_age=none_max_age, mx_patterns=())
    wait_seconds = max(previous_policy.max_age, none_max_age)
    steps = [
        LifecycleStep(StepKind.PUBLISH_POLICY, policy=none_policy,
                      note="step 1: mode=none policy with small max_age"),
        LifecycleStep(StepKind.BUMP_RECORD_ID,
                      note="step 2: new id triggers refetch"),
        LifecycleStep(StepKind.WAIT, wait=Duration(wait_seconds),
                      note="step 3: wait out every cached policy"),
        LifecycleStep(StepKind.REMOVE_RECORD, note="step 4a"),
        LifecycleStep(StepKind.REMOVE_POLICY, note="step 4b"),
        LifecycleStep(StepKind.REMOVE_POLICY_HOST, note="step 4c"),
    ]
    return RemovalPlan(domain, steps)


@dataclass
class RemovalCheck:
    """Verdict on an operator's removal sequence."""

    compliant: bool
    problems: List[str] = field(default_factory=list)


def check_removal_sequence(steps: Sequence[LifecycleStep],
                           previous_policy: Policy) -> RemovalCheck:
    """Lint an observed removal sequence against the RFC procedure."""
    problems: List[str] = []
    kinds = [s.kind for s in steps]

    none_published = any(
        s.kind is StepKind.PUBLISH_POLICY and s.policy is not None
        and s.policy.mode is PolicyMode.NONE for s in steps)
    if not none_published:
        problems.append("never published a mode=none policy before removal")

    if StepKind.BUMP_RECORD_ID not in kinds and none_published:
        problems.append("policy changed without bumping the record id; "
                        "senders with fresh caches will not refetch")

    waited = sum((s.wait.seconds for s in steps
                  if s.kind is StepKind.WAIT and s.wait is not None), 0)
    if waited < previous_policy.max_age:
        problems.append(
            f"waited {waited}s but the previous policy's max_age is "
            f"{previous_policy.max_age}s; cached enforce policies survive")

    removed_policy_early = False
    seen_wait = False
    for step in steps:
        if step.kind is StepKind.WAIT:
            seen_wait = True
        if step.kind in (StepKind.REMOVE_POLICY, StepKind.REMOVE_POLICY_HOST,
                         StepKind.REMOVE_RECORD) and not seen_wait:
            removed_policy_early = True
    if removed_policy_early:
        problems.append("removed infrastructure before the waiting period")

    return RemovalCheck(compliant=not problems, problems=problems)
