"""Proactive policy refresh (RFC 8461 §3.3).

Senders SHOULD refresh cached policies before they expire, not only
on-demand at send time — otherwise a domain that is rarely mailed
falls out of cache and loses MTA-STS protection exactly when the next
(possibly attacked) delivery happens.  The :class:`RefreshDaemon`
implements the recommended behaviour: it tracks every cached policy
and refetches those within a configurable window of expiry, honouring
the record-id short-circuit (an unchanged ``id`` still restarts the
max_age clock, per the RFC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.clock import Clock, Duration, Instant
from repro.core.cache import CachedPolicy, PolicyCache
from repro.core.fetch import PolicyFetcher


@dataclass
class RefreshResult:
    domain: str
    action: str          # "refreshed" | "revalidated" | "fetch-failed" | "skipped"
    detail: str = ""


class RefreshDaemon:
    """Keeps a :class:`PolicyCache` warm.

    *refresh_window* controls how close to expiry an entry must be
    before the daemon refetches it; RFC 8461 suggests checking "at
    regular intervals", commonly daily with a window of a day or more.
    """

    def __init__(self, cache: PolicyCache, fetcher: PolicyFetcher,
                 clock: Clock, *,
                 refresh_window: Duration = Duration(86_400)):
        self._cache = cache
        self._fetcher = fetcher
        self._clock = clock
        self.refresh_window = refresh_window
        self.runs = 0

    def due_entries(self) -> List[CachedPolicy]:
        """Cached entries expiring within the refresh window."""
        now = self._clock.now()
        horizon = now + self.refresh_window
        return [entry for entry in list(self._cache._entries.values())
                if entry.expires_at() <= horizon]

    def run_once(self) -> List[RefreshResult]:
        """Refresh every due entry; returns what happened per domain."""
        self.runs += 1
        results: List[RefreshResult] = []
        for entry in self.due_entries():
            results.append(self._refresh(entry))
        return results

    def _refresh(self, entry: CachedPolicy) -> RefreshResult:
        domain = entry.domain
        record_result = self._fetcher.lookup_record(domain)
        record = record_result.record
        if record is None:
            # The record vanished or broke.  RFC 8461: a cached policy
            # stays valid until max_age; the daemon leaves it to age
            # out rather than dropping protection early.
            return RefreshResult(domain, "skipped",
                                 "record missing/invalid; letting the "
                                 "cached policy age out")
        if record.id == entry.record_id:
            # Same id: the policy is unchanged.  Restart the clock
            # without refetching the body (the RFC allows treating the
            # cache as fresh again).
            self._cache.store(domain, entry.policy, record.id)
            return RefreshResult(domain, "revalidated",
                                 f"id {record.id} unchanged")
        fetch = self._fetcher.fetch_policy(domain)
        if fetch.policy is not None and fetch.failed_stage is None:
            self._cache.store(domain, fetch.policy, record.id)
            return RefreshResult(domain, "refreshed",
                                 f"new id {record.id}")
        return RefreshResult(
            domain, "fetch-failed",
            str(fetch.failed_stage.value if fetch.failed_stage else ""))

    def run_until(self, end: Instant,
                  interval: Duration = Duration(86_400)) -> List[RefreshResult]:
        """Run periodically until *end*, advancing the shared clock."""
        results: List[RefreshResult] = []
        while self._clock.now() < end:
            step = min(interval, end - self._clock.now())
            if step.seconds <= 0:
                break
            self._clock.advance(step)
            results.extend(self.run_once())
        return results
