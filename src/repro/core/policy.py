"""The MTA-STS policy file (RFC 8461 §3.2).

The policy is a key/value text document served at
``https://mta-sts.<domain>/.well-known/mta-sts.txt``.  Parsing here is
strict in what it rejects but forgiving in what it reports: the
lenient entry point :func:`check_policy_text` returns *every* fault it
finds, which is what the measurement pipeline needs to reproduce the
paper's policy-syntax error census (§4.3.3): empty files, invalid mx
patterns (email addresses, trailing dots, empty patterns), missing or
malformed fields.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import PolicyError, PolicySyntaxError, PolicyWarning

MAX_POLICY_AGE = 31_557_600          # RFC 8461: max_age upper bound (1 year)

_MX_PATTERN_RE = re.compile(
    r"^(\*\.)?([a-z0-9_]([a-z0-9_-]*[a-z0-9_])?\.)+[a-z]{2,}$")


class PolicyMode(enum.Enum):
    ENFORCE = "enforce"
    TESTING = "testing"
    NONE = "none"


@dataclass(frozen=True)
class Policy:
    """A parsed, valid MTA-STS policy."""

    version: str
    mode: PolicyMode
    max_age: int
    mx_patterns: Tuple[str, ...]

    def requires_delivery_refusal(self) -> bool:
        """Whether validation failure must block delivery."""
        return self.mode is PolicyMode.ENFORCE


def render_policy(policy: Policy, *, line_ending: str = "\r\n") -> str:
    """Serialise a policy to RFC 8461 wire format (CRLF separated)."""
    lines = [f"version: {policy.version}",
             f"mode: {policy.mode.value}"]
    lines.extend(f"mx: {pattern}" for pattern in policy.mx_patterns)
    lines.append(f"max_age: {policy.max_age}")
    return line_ending.join(lines) + line_ending


def _valid_mx_pattern(pattern: str) -> bool:
    """Syntactic validity of one mx pattern.

    Rejects the malformations §4.3.3 catalogues: empty patterns, email
    addresses, trailing dots, embedded wildcards anywhere but the
    leftmost whole label.
    """
    if not pattern:
        return False
    if "@" in pattern or pattern.endswith(".") or " " in pattern:
        return False
    if "*" in pattern and not pattern.startswith("*."):
        return False
    if pattern.count("*") > 1:
        return False
    return bool(_MX_PATTERN_RE.match(pattern.lower()))


@dataclass
class PolicyCheck:
    """Lenient parse result: a policy if salvageable, plus all faults."""

    policy: Optional[Policy] = None
    errors: List[PolicySyntaxError] = field(default_factory=list)
    details: List[str] = field(default_factory=list)
    #: Non-fatal deviations: the policy parses and is used, but the
    #: fault is surfaced rather than silently corrected.
    warnings: List[PolicyWarning] = field(default_factory=list)
    warning_details: List[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return self.policy is not None and not self.errors

    def add(self, kind: PolicySyntaxError, detail: str) -> None:
        self.errors.append(kind)
        self.details.append(detail)

    def add_warning(self, kind: PolicyWarning, detail: str) -> None:
        self.warnings.append(kind)
        self.warning_details.append(detail)


def check_policy_text(text: str) -> PolicyCheck:
    """Inspect raw policy text, collecting every syntax fault.

    Accepts both CRLF and bare LF line endings (the standard says CRLF;
    real senders, and the paper's scanner, accept LF).
    """
    check = PolicyCheck()
    if not text.strip():
        check.add(PolicySyntaxError.EMPTY_FILE, "policy body is empty")
        return check

    version: Optional[str] = None
    mode_text: Optional[str] = None
    max_age_text: Optional[str] = None
    mx_values: List[str] = []
    seen_keys: set[str] = set()

    for raw_line in text.replace("\r\n", "\n").split("\n"):
        line = raw_line.strip()
        if not line:
            continue
        if ":" not in line:
            check.add(PolicySyntaxError.MALFORMED_LINE,
                      f"line without ':' separator: {line!r}")
            continue
        key, _, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if key == "mx":
            mx_values.append(value)
            continue
        if key in seen_keys:
            check.add(PolicySyntaxError.DUPLICATE_KEY,
                      f"duplicate key {key!r}")
            continue
        seen_keys.add(key)
        if key == "version":
            version = value
        elif key == "mode":
            mode_text = value
        elif key == "max_age":
            max_age_text = value
        # Unknown keys are permitted for extensibility; ignored.

    if version is None:
        check.add(PolicySyntaxError.MISSING_VERSION, "no version field")
    elif version != "STSv1":
        check.add(PolicySyntaxError.BAD_VERSION,
                  f"unsupported version {version!r}")

    mode: Optional[PolicyMode] = None
    if mode_text is None:
        check.add(PolicySyntaxError.MISSING_MODE, "no mode field")
    else:
        try:
            mode = PolicyMode(mode_text.lower())
        except ValueError:
            check.add(PolicySyntaxError.INVALID_MODE,
                      f"unknown mode {mode_text!r}")

    # ``str.isdigit`` accepts non-ASCII digits — some of which
    # ``int()`` parses (Arabic-Indic "١٢٣") and some of which it
    # rejects with ValueError (superscripts like "²") — so the check
    # must be ASCII-only.  An in-range value above the RFC 8461 bound
    # is still usable (senders cap it themselves) but is recorded as a
    # warning instead of being silently clamped.
    max_age: Optional[int] = None
    if max_age_text is None:
        check.add(PolicySyntaxError.MISSING_MAX_AGE, "no max_age field")
    elif not (max_age_text.isascii() and max_age_text.isdigit()):
        check.add(PolicySyntaxError.INVALID_MAX_AGE,
                  f"max_age is not a non-negative integer: {max_age_text!r}")
    else:
        max_age = int(max_age_text)
        if max_age > MAX_POLICY_AGE:
            check.add_warning(
                PolicyWarning.MAX_AGE_OVER_BOUND,
                f"max_age {max_age} exceeds RFC 8461 bound "
                f"{MAX_POLICY_AGE}; clamped")
            max_age = MAX_POLICY_AGE

    # mx patterns are required unless mode is none (RFC 8461 §3.2).
    if not mx_values and mode is not PolicyMode.NONE:
        check.add(PolicySyntaxError.NO_MX_PATTERNS, "no mx fields")
    for pattern in mx_values:
        if not _valid_mx_pattern(pattern):
            check.add(PolicySyntaxError.INVALID_MX_PATTERN,
                      f"invalid mx pattern {pattern!r}")

    if (version == "STSv1" and mode is not None and max_age is not None
            and (mx_values or mode is PolicyMode.NONE)):
        check.policy = Policy(
            version="STSv1", mode=mode, max_age=max_age,
            mx_patterns=tuple(p.lower() for p in mx_values))
    return check


def parse_policy(text: str) -> Policy:
    """Strict parse: raise :class:`PolicyError` at the first fault."""
    check = check_policy_text(text)
    if not check.valid:
        kind = check.errors[0]
        detail = check.details[0] if check.details else kind.value
        raise PolicyError(kind, detail)
    assert check.policy is not None
    return check.policy
