"""An MTA-STS-compliant sending MTA (RFC 8461 §5).

:class:`MtaStsSender` wraps the protocol-only
:class:`~repro.smtp.delivery.SendingMta` with the validation sequence
of Figure 1: discover the policy (honouring the TOFU cache), gate MX
selection on the policy's ``mx`` patterns, and gate final delivery on
PKIX certificate validation — refusing in ``enforce`` mode, proceeding
with a report in ``testing`` mode.

The optional DANE hook reproduces §6.2's sender taxonomy, including
the known Postfix-milter bug where MTA-STS is (wrongly) preferred over
DANE when both are available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.clock import Clock
from repro.core.cache import PolicyCache
from repro.core.dane import DaneValidator
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.matching import policy_covers_mx
from repro.dns.resolver import Resolver
from repro.netsim.network import Network
from repro.pki.ca import TrustStore
from repro.pki.certificate import Certificate
from repro.pki.validation import validate_chain
from repro.smtp.delivery import (
    DeliveryAttempt, DeliveryStatus, Message, SendingMta,
)


@dataclass
class SenderPolicyConfig:
    """Which transport-security validations this sender performs."""

    validate_mta_sts: bool = True
    validate_dane: bool = False
    prefer_mta_sts_over_dane: bool = False   # the §6.2 milter bug
    require_pkix_always: bool = False


@dataclass
class ValidationEvent:
    """One observable sender decision, for the §6 testbed to record."""

    domain: str
    mechanism: str          # mta-sts | dane | opportunistic | pkix
    action: str             # fetched-policy | matched | refused | delivered
    detail: str = ""


class MtaStsSender:
    """A sending MTA that implements MTA-STS (and optionally DANE)."""

    def __init__(self, identity: str, network: Network, resolver: Resolver,
                 trust_store: TrustStore, clock: Clock,
                 fetcher: PolicyFetcher,
                 *, config: Optional[SenderPolicyConfig] = None,
                 dane: Optional[DaneValidator] = None,
                 reporter=None,
                 cache: Optional[PolicyCache] = None,
                 record_events: bool = True):
        """*reporter* is an optional
        :class:`repro.core.reporting.ReportCollector`; when present the
        sender feeds it RFC 8460 session results (successes, policy
        fetch errors, certificate failures) per recipient domain.

        *cache* injects an existing :class:`PolicyCache` (a rehydrated
        one after a restart, per RFC 8461's persistent-cache advice);
        by default the sender owns a fresh cache.  *record_events*
        turns the :class:`ValidationEvent` log off for high-volume
        campaigns, where an unbounded per-delivery event list would
        dominate memory."""
        self.identity = identity
        self.reporter = reporter
        self._clock = clock
        self._trust_store = trust_store
        self._fetcher = fetcher
        self._dane = dane
        self.config = config or SenderPolicyConfig()
        self.cache = cache if cache is not None else PolicyCache(clock)
        self.record_events = record_events
        self.events: List[ValidationEvent] = []
        self._mta = SendingMta(
            identity, network, resolver, trust_store, clock,
            require_pkix=self.config.require_pkix_always,
            security_gate=self._gate,
            mx_preflight=self._preflight)
        self._active_policy: Optional[Policy] = None
        self._active_mechanism: str = "opportunistic"

    def _note(self, event: ValidationEvent) -> None:
        if self.record_events:
            self.events.append(event)

    # -- policy discovery -------------------------------------------------

    def _discover_policy(self, domain: str) -> Optional[Policy]:
        """Return the applicable policy, honouring cache and record id."""
        record_result = self._fetcher.lookup_record(domain)
        record = record_result.record
        record_id = record.id if record is not None else None

        cached = self.cache.get(domain)
        if cached is not None and not self.cache.needs_refresh(domain, record_id):
            return cached.policy

        if record is None:
            # No (valid) record: nothing new to fetch.  A still-fresh
            # cached policy remains authoritative (TOFU).
            return cached.policy if cached is not None else None

        fetch = self._fetcher.fetch_policy(domain)
        if fetch.policy is not None and fetch.failed_stage is None:
            self.cache.store(domain, fetch.policy, record.id)
            self._note(ValidationEvent(
                domain, "mta-sts", "fetched-policy",
                f"id={record.id} mode={fetch.policy.mode.value}"))
            if self.reporter is not None:
                from repro.core.policy import render_policy
                self.reporter.record_policy(
                    domain, "sts",
                    tuple(render_policy(fetch.policy).strip()
                          .split("\r\n")))
            return fetch.policy
        # Fetch failed: keep honouring a fresh cached policy; otherwise
        # the sender degrades to opportunistic TLS (the downgrade window
        # the paper warns about).
        stage = fetch.failed_stage.value if fetch.failed_stage else ""
        self._note(ValidationEvent(
            domain, "mta-sts", "fetch-failed", stage))
        if self.reporter is not None:
            from repro.core.reporting import result_type_for_fetch_stage
            self.reporter.record_policy(domain, "sts", ())
            self.reporter.record_failure(
                domain, result_type_for_fetch_stage(stage), detail=stage)
        return cached.policy if cached is not None else None

    # -- gates wired into the SendingMta ------------------------------------

    def _preflight(self, domain: str, mx_hostname: str) -> tuple:
        policy = self._active_policy
        if policy is None or policy.mode is PolicyMode.NONE:
            return True, "no-policy"
        if policy_covers_mx(policy, mx_hostname):
            return True, "mx-matched"
        if policy.mode is PolicyMode.ENFORCE:
            self._note(ValidationEvent(
                domain, "mta-sts", "refused",
                f"{mx_hostname} matches no mx pattern"))
            return False, "mx-pattern-mismatch"
        self._note(ValidationEvent(
            domain, "mta-sts", "testing-mismatch",
            f"{mx_hostname} matches no mx pattern (testing mode)"))
        return True, "testing-mode-mismatch"

    def _gate(self, domain: str, mx_hostname: str,
              certificate: Optional[Certificate]) -> tuple:
        if self._active_mechanism == "dane":
            assert self._dane is not None
            verdict = self._dane.verify_mx(mx_hostname, certificate)
            if verdict.matched:
                return True, "dane-matched"
            self._note(ValidationEvent(
                domain, "dane", "refused", verdict.detail))
            return False, f"dane: {verdict.detail}"

        policy = self._active_policy
        if policy is None or policy.mode is PolicyMode.NONE:
            return True, "opportunistic"
        validation = validate_chain(certificate, mx_hostname,
                                    self._trust_store, self._clock.now())
        if validation.valid:
            return True, "pkix-valid"
        if self.reporter is not None and validation.failure is not None:
            from repro.core.reporting import result_type_for_tls_failure
            self.reporter.record_failure(
                domain, result_type_for_tls_failure(
                    validation.failure.value),
                mx_hostname=mx_hostname, detail=validation.detail)
        if policy.mode is PolicyMode.ENFORCE:
            self._note(ValidationEvent(
                domain, "mta-sts", "refused",
                f"{mx_hostname}: {validation.detail}"))
            return False, f"pkix: {validation.detail}"
        self._note(ValidationEvent(
            domain, "mta-sts", "testing-cert-failure",
            f"{mx_hostname}: {validation.detail}"))
        return True, "testing-mode-cert-failure"

    # -- public API ----------------------------------------------------------

    def send(self, message: Message, *, attempt: int = 0) -> DeliveryAttempt:
        """Deliver one message; *attempt* is the caller's retry ordinal
        (threaded down to the transport so attempt-scoped faults
        recover across queue retries)."""
        domain = message.recipient_domain
        self._active_policy = None
        self._active_mechanism = "opportunistic"

        has_dane = (self.config.validate_dane and self._dane is not None
                    and self._dane.domain_has_dane(domain))
        policy = (self._discover_policy(domain)
                  if self.config.validate_mta_sts else None)

        # RFC 8461 §2: when DANE TLSA records exist and are usable, DANE
        # takes precedence; honouring MTA-STS instead is the milter bug.
        if has_dane and policy is not None:
            if self.config.prefer_mta_sts_over_dane:
                self._active_mechanism = "mta-sts"
                self._active_policy = policy
            else:
                self._active_mechanism = "dane"
        elif has_dane:
            self._active_mechanism = "dane"
        elif policy is not None:
            self._active_mechanism = "mta-sts"
            self._active_policy = policy

        outcome = self._mta.send(message, attempt=attempt)
        if outcome.delivered:
            self._note(ValidationEvent(
                domain, self._active_mechanism, "delivered"))
            if self.reporter is not None:
                self.reporter.record_success(domain)
        return outcome

    @property
    def last_mechanism(self) -> str:
        return self._active_mechanism
