"""SMTP TLS Reporting (RFC 8460) — the feedback loop of Appendix B.

TLSRPT lets receiving domains learn why senders' TLS negotiations or
MTA-STS/DANE validations fail.  The paper observes that while many
domains *publish* TLSRPT records (Figure 12), only two major providers
actually *send* reports.  This module implements both halves so the
reproduction's compliant senders can be among them:

* :class:`~repro.core.tlsrpt.FailureDetail` /
  :class:`~repro.core.tlsrpt.PolicySummary` /
  :class:`~repro.core.tlsrpt.TlsRptReport` — the RFC 8460 report data
  model (JSON-renderable), re-exported here (``TlsReport`` is the
  historical alias);
* :class:`ReportCollector` — accumulates per-recipient-domain session
  results inside a sending MTA over a reporting window;
* :class:`ReportSubmitter` — delivers finished reports to the
  ``rua`` endpoints of the recipient's TLSRPT record, via mail
  (``mailto:``) or HTTPS POST (``https:``);
* :class:`ReportInbox` — the receiving side, for tests and the
  ecosystem's report-consuming domains;
* :class:`ReportAggregator` — the operator-side ingestion point that
  collects received reports per policy domain (fed by the delivery
  campaign's mailbox sweep and the ``repro tlsrpt`` CLI).
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clock import DAY, Clock, Instant
from repro.core.tlsrpt import (
    FailureDetail, PolicySummary, ResultType, TlsRptRecord, TlsRptReport,
    lookup_tlsrpt,
)
from repro.dns.name import canonical_host
from repro.dns.resolver import Resolver

#: Historical name — the report model now lives in
#: :mod:`repro.core.tlsrpt` next to the record parser.
TlsReport = TlsRptReport

__all__ = [
    "ResultType", "FailureDetail", "PolicySummary", "TlsRptReport",
    "TlsReport", "ReportCollector", "ReportInbox", "SubmissionResult",
    "ReportSubmitter", "ReportAggregator",
    "result_type_for_fetch_stage", "result_type_for_tls_failure",
]


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------

@dataclass
class _DomainTally:
    policy_type: str = "no-policy-found"
    policy_strings: Tuple[str, ...] = ()
    successes: int = 0
    failures: Dict[Tuple[ResultType, str], int] = field(
        default_factory=lambda: defaultdict(int))


class ReportCollector:
    """Accumulates session outcomes per recipient policy domain.

    A sending MTA records one entry per delivery attempt; the collector
    rolls a 24-hour window (RFC 8460 reports are daily) and emits
    :class:`TlsRptReport` objects on :meth:`close_window`.
    """

    def __init__(self, organization: str, contact: str, clock: Clock):
        self.organization = organization
        self.contact = contact
        self._clock = clock
        self._window_start = clock.now()
        self._tallies: Dict[str, _DomainTally] = defaultdict(_DomainTally)
        self._report_serial = 0

    def record_policy(self, domain: str, policy_type: str,
                      policy_strings: Tuple[str, ...]) -> None:
        tally = self._tallies[canonical_host(domain)]
        tally.policy_type = policy_type
        tally.policy_strings = policy_strings

    def record_success(self, domain: str) -> None:
        self._tallies[canonical_host(domain)].successes += 1

    def record_failure(self, domain: str, result_type: ResultType,
                       mx_hostname: str = "", detail: str = "") -> None:
        tally = self._tallies[canonical_host(domain)]
        tally.failures[(result_type, mx_hostname)] += 1

    def window_expired(self) -> bool:
        return self._clock.now() - self._window_start >= DAY

    def close_window(self) -> List[TlsRptReport]:
        """Emit one report per recipient domain and reset the window."""
        reports: List[TlsRptReport] = []
        window_end = self._clock.now()
        for domain, tally in sorted(self._tallies.items()):
            if not tally.successes and not tally.failures:
                continue
            self._report_serial += 1
            details = [
                FailureDetail(result_type=rtype,
                              receiving_mx_hostname=mx,
                              failed_session_count=count)
                for (rtype, mx), count in sorted(
                    tally.failures.items(),
                    key=lambda kv: (kv[0][0].value, kv[0][1]))]
            summary = PolicySummary(
                policy_type=tally.policy_type,
                policy_domain=domain,
                policy_strings=tally.policy_strings,
                total_successful_sessions=tally.successes,
                total_failed_sessions=sum(tally.failures.values()),
                failure_details=details)
            reports.append(TlsRptReport(
                organization_name=self.organization,
                contact_info=self.contact,
                report_id=(f"{self._window_start.date_string()}-"
                           f"{domain}-{self._report_serial:06d}"),
                window_start=self._window_start,
                window_end=window_end,
                policies=[summary]))
        self._tallies.clear()
        self._window_start = window_end
        return reports


# ---------------------------------------------------------------------------
# Submission and receipt
# ---------------------------------------------------------------------------

class ReportInbox:
    """A receiving endpoint that stores submitted reports.

    Install as the HTTPS ``rua`` route handler and/or watch a mailbox
    address; tests and the ecosystem's report-consuming domains read
    :attr:`received`.
    """

    def __init__(self, domain: str):
        self.domain = domain
        self.received: List[TlsRptReport] = []

    def submit(self, report_json: str) -> bool:
        try:
            self.received.append(TlsRptReport.from_json(report_json))
        except (KeyError, ValueError, json.JSONDecodeError):
            return False
        return True


@dataclass
class SubmissionResult:
    domain: str
    endpoint: str
    delivered: bool
    detail: str = ""


class ReportSubmitter:
    """Delivers reports to the recipients' TLSRPT ``rua`` endpoints."""

    def __init__(self, resolver: Resolver, *, mail_transport=None,
                 https_inboxes: Optional[Dict[str, ReportInbox]] = None):
        """``mail_transport`` is a :class:`repro.smtp.delivery.SendingMta`
        (or compatible) used for ``mailto:`` endpoints;
        ``https_inboxes`` maps https URLs to inboxes (the simulation's
        stand-in for POSTing to a collector service)."""
        self._resolver = resolver
        self._mail = mail_transport
        self._https_inboxes = https_inboxes or {}

    def submit_report(self, report: TlsRptReport) -> List[SubmissionResult]:
        domain = report.policies[0].policy_domain if report.policies else ""
        record = lookup_tlsrpt(self._resolver, domain) if domain else None
        if record is None:
            return [SubmissionResult(domain, "", False,
                                     "no TLSRPT record published")]
        results = []
        for endpoint in record.rua:
            results.append(self._submit_one(report, domain, endpoint))
        return results

    def _submit_one(self, report: TlsRptReport, domain: str,
                    endpoint: str) -> SubmissionResult:
        if endpoint.startswith("mailto:"):
            if self._mail is None:
                return SubmissionResult(domain, endpoint, False,
                                        "no mail transport configured")
            from repro.smtp.delivery import Message
            address = endpoint[len("mailto:"):]
            attempt = self._mail.send(Message(
                sender=f"tlsrpt@{report.organization_name}",
                recipient=address, body=report.to_json()))
            return SubmissionResult(domain, endpoint, attempt.delivered,
                                    attempt.status.value)
        if endpoint.startswith("https://"):
            inbox = self._https_inboxes.get(endpoint)
            if inbox is None:
                return SubmissionResult(domain, endpoint, False,
                                        "https endpoint unreachable")
            ok = inbox.submit(report.to_json())
            return SubmissionResult(domain, endpoint, ok,
                                    "accepted" if ok else "rejected")
        return SubmissionResult(domain, endpoint, False,
                                f"unsupported scheme in {endpoint!r}")


# ---------------------------------------------------------------------------
# Operator-side aggregation
# ---------------------------------------------------------------------------

class ReportAggregator:
    """Ingests received reports, indexed per recipient policy domain.

    This is the operator side of the RFC 8460 loop: reports arrive via
    any channel (mailbox sweep, HTTPS collector, a saved report dir)
    and the aggregator gives downstream consumers —
    :class:`repro.obs.tlsrpt_monitor.TlsRptMonitor`, the verdict-driven
    repair planner — one indexed view of them.  Malformed submissions
    are counted, never raised.
    """

    def __init__(self):
        self.reports: List[TlsRptReport] = []
        self.by_domain: Dict[str, List[TlsRptReport]] = defaultdict(list)
        self.malformed = 0

    def ingest(self, report_json: str) -> Optional[TlsRptReport]:
        """Parse and add one submitted report body."""
        try:
            report = TlsRptReport.from_json(report_json)
        except (KeyError, ValueError, json.JSONDecodeError):
            self.malformed += 1
            return None
        self.add(report)
        return report

    def add(self, report: TlsRptReport) -> None:
        self.reports.append(report)
        for summary in report.policies:
            self.by_domain[canonical_host(
                summary.policy_domain)].append(report)

    def census(self) -> Dict[str, object]:
        """Integer totals over everything ingested so far."""
        sessions = successes = failures = 0
        by_result: Dict[str, int] = {}
        for report in self.reports:
            for summary in report.policies:
                successes += summary.total_successful_sessions
                failures += summary.total_failed_sessions
                for detail in summary.failure_details:
                    key = detail.result_type.value
                    by_result[key] = (by_result.get(key, 0)
                                      + detail.failed_session_count)
        sessions = successes + failures
        return {
            "reports": len(self.reports),
            "domains": len(self.by_domain),
            "malformed": self.malformed,
            "sessions": sessions,
            "successful_sessions": successes,
            "failed_sessions": failures,
            "failures_by_result_type": dict(sorted(by_result.items())),
        }


# ---------------------------------------------------------------------------
# Mapping sender events to result types
# ---------------------------------------------------------------------------

def result_type_for_fetch_stage(stage: str) -> ResultType:
    """Map a policy-fetch failure stage onto RFC 8460's vocabulary."""
    if stage == "policy-syntax":
        return ResultType.STS_POLICY_INVALID
    if stage == "tls":
        # The policy host presented a certificate the web PKI rejects —
        # RFC 8460 §4.3.2's dedicated result type, not a generic fetch
        # error.
        return ResultType.STS_WEBPKI_INVALID
    return ResultType.STS_POLICY_FETCH_ERROR


def result_type_for_tls_failure(failure_value: str) -> ResultType:
    mapping = {
        "hostname-mismatch": ResultType.CERTIFICATE_HOST_MISMATCH,
        "expired": ResultType.CERTIFICATE_EXPIRED,
        "not-yet-valid": ResultType.CERTIFICATE_EXPIRED,
        "self-signed": ResultType.CERTIFICATE_NOT_TRUSTED,
        "untrusted-root": ResultType.CERTIFICATE_NOT_TRUSTED,
        "no-tls-support": ResultType.STARTTLS_NOT_SUPPORTED,
    }
    return mapping.get(failure_value, ResultType.VALIDATION_FAILURE)
