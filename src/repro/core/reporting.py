"""SMTP TLS Reporting (RFC 8460) — the feedback loop of Appendix B.

TLSRPT lets receiving domains learn why senders' TLS negotiations or
MTA-STS/DANE validations fail.  The paper observes that while many
domains *publish* TLSRPT records (Figure 12), only two major providers
actually *send* reports.  This module implements the sending side in
full so the reproduction's compliant senders can be among them:

* :class:`FailureDetail` / :class:`PolicySummary` / :class:`TlsReport`
  — the RFC 8460 report data model (JSON-renderable);
* :class:`ReportCollector` — accumulates per-recipient-domain session
  results inside a sending MTA over a reporting window;
* :class:`ReportSubmitter` — delivers finished reports to the
  ``rua`` endpoints of the recipient's TLSRPT record, via mail
  (``mailto:``) or HTTPS POST (``https:``);
* :class:`ReportInbox` — the receiving side, for tests and the
  ecosystem's report-consuming domains.
"""

from __future__ import annotations

import enum
import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clock import DAY, Clock, Instant
from repro.core.tlsrpt import TlsRptRecord, lookup_tlsrpt
from repro.dns.name import canonical_host
from repro.dns.resolver import Resolver


class ResultType(enum.Enum):
    """RFC 8460 §4.3 result types (the subset MTA-STS senders emit)."""

    STARTTLS_NOT_SUPPORTED = "starttls-not-supported"
    CERTIFICATE_HOST_MISMATCH = "certificate-host-mismatch"
    CERTIFICATE_EXPIRED = "certificate-expired"
    CERTIFICATE_NOT_TRUSTED = "certificate-not-trusted"
    VALIDATION_FAILURE = "validation-failure"
    STS_POLICY_FETCH_ERROR = "sts-policy-fetch-error"
    STS_POLICY_INVALID = "sts-policy-invalid"
    STS_WEBPKI_INVALID = "sts-webpki-invalid"


@dataclass
class FailureDetail:
    """One failure class observed against one receiving MX."""

    result_type: ResultType
    receiving_mx_hostname: str = ""
    failed_session_count: int = 0
    additional_info: str = ""

    def to_json_dict(self) -> dict:
        out = {"result-type": self.result_type.value,
               "failed-session-count": self.failed_session_count}
        if self.receiving_mx_hostname:
            out["receiving-mx-hostname"] = self.receiving_mx_hostname
        if self.additional_info:
            out["additional-information"] = self.additional_info
        return out


@dataclass
class PolicySummary:
    """Per-policy result block (RFC 8460 §4.4)."""

    policy_type: str                  # "sts" | "tlsa" | "no-policy-found"
    policy_domain: str
    policy_strings: Tuple[str, ...] = ()
    total_successful_sessions: int = 0
    total_failed_sessions: int = 0
    failure_details: List[FailureDetail] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "policy": {
                "policy-type": self.policy_type,
                "policy-domain": self.policy_domain,
                "policy-string": list(self.policy_strings),
            },
            "summary": {
                "total-successful-session-count":
                    self.total_successful_sessions,
                "total-failure-session-count": self.total_failed_sessions,
            },
            "failure-details": [d.to_json_dict()
                                for d in self.failure_details],
        }


@dataclass
class TlsReport:
    """A complete RFC 8460 report for one (sender, recipient, day)."""

    organization_name: str
    contact_info: str
    report_id: str
    window_start: Instant
    window_end: Instant
    policies: List[PolicySummary] = field(default_factory=list)

    def to_json(self) -> str:
        body = {
            "organization-name": self.organization_name,
            "date-range": {
                "start-datetime": str(self.window_start),
                "end-datetime": str(self.window_end),
            },
            "contact-info": self.contact_info,
            "report-id": self.report_id,
            "policies": [p.to_json_dict() for p in self.policies],
        }
        return json.dumps(body, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TlsReport":
        data = json.loads(text)
        policies = []
        for block in data.get("policies", []):
            policy = block["policy"]
            summary = block["summary"]
            details = [
                FailureDetail(
                    result_type=ResultType(d["result-type"]),
                    receiving_mx_hostname=d.get("receiving-mx-hostname", ""),
                    failed_session_count=d["failed-session-count"],
                    additional_info=d.get("additional-information", ""))
                for d in block.get("failure-details", [])]
            policies.append(PolicySummary(
                policy_type=policy["policy-type"],
                policy_domain=policy["policy-domain"],
                policy_strings=tuple(policy.get("policy-string", ())),
                total_successful_sessions=summary[
                    "total-successful-session-count"],
                total_failed_sessions=summary[
                    "total-failure-session-count"],
                failure_details=details))
        return cls(
            organization_name=data["organization-name"],
            contact_info=data["contact-info"],
            report_id=data["report-id"],
            window_start=Instant.parse(
                data["date-range"]["start-datetime"].rstrip("Z")),
            window_end=Instant.parse(
                data["date-range"]["end-datetime"].rstrip("Z")),
            policies=policies)


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------

@dataclass
class _DomainTally:
    policy_type: str = "no-policy-found"
    policy_strings: Tuple[str, ...] = ()
    successes: int = 0
    failures: Dict[Tuple[ResultType, str], int] = field(
        default_factory=lambda: defaultdict(int))


class ReportCollector:
    """Accumulates session outcomes per recipient policy domain.

    A sending MTA records one entry per delivery attempt; the collector
    rolls a 24-hour window (RFC 8460 reports are daily) and emits
    :class:`TlsReport` objects on :meth:`close_window`.
    """

    def __init__(self, organization: str, contact: str, clock: Clock):
        self.organization = organization
        self.contact = contact
        self._clock = clock
        self._window_start = clock.now()
        self._tallies: Dict[str, _DomainTally] = defaultdict(_DomainTally)
        self._report_serial = 0

    def record_policy(self, domain: str, policy_type: str,
                      policy_strings: Tuple[str, ...]) -> None:
        tally = self._tallies[canonical_host(domain)]
        tally.policy_type = policy_type
        tally.policy_strings = policy_strings

    def record_success(self, domain: str) -> None:
        self._tallies[canonical_host(domain)].successes += 1

    def record_failure(self, domain: str, result_type: ResultType,
                       mx_hostname: str = "", detail: str = "") -> None:
        tally = self._tallies[canonical_host(domain)]
        tally.failures[(result_type, mx_hostname)] += 1

    def window_expired(self) -> bool:
        return self._clock.now() - self._window_start >= DAY

    def close_window(self) -> List[TlsReport]:
        """Emit one report per recipient domain and reset the window."""
        reports: List[TlsReport] = []
        window_end = self._clock.now()
        for domain, tally in sorted(self._tallies.items()):
            if not tally.successes and not tally.failures:
                continue
            self._report_serial += 1
            details = [
                FailureDetail(result_type=rtype,
                              receiving_mx_hostname=mx,
                              failed_session_count=count)
                for (rtype, mx), count in sorted(
                    tally.failures.items(),
                    key=lambda kv: (kv[0][0].value, kv[0][1]))]
            summary = PolicySummary(
                policy_type=tally.policy_type,
                policy_domain=domain,
                policy_strings=tally.policy_strings,
                total_successful_sessions=tally.successes,
                total_failed_sessions=sum(tally.failures.values()),
                failure_details=details)
            reports.append(TlsReport(
                organization_name=self.organization,
                contact_info=self.contact,
                report_id=(f"{self._window_start.date_string()}-"
                           f"{domain}-{self._report_serial:06d}"),
                window_start=self._window_start,
                window_end=window_end,
                policies=[summary]))
        self._tallies.clear()
        self._window_start = window_end
        return reports


# ---------------------------------------------------------------------------
# Submission and receipt
# ---------------------------------------------------------------------------

class ReportInbox:
    """A receiving endpoint that stores submitted reports.

    Install as the HTTPS ``rua`` route handler and/or watch a mailbox
    address; tests and the ecosystem's report-consuming domains read
    :attr:`received`.
    """

    def __init__(self, domain: str):
        self.domain = domain
        self.received: List[TlsReport] = []

    def submit(self, report_json: str) -> bool:
        try:
            self.received.append(TlsReport.from_json(report_json))
        except (KeyError, ValueError, json.JSONDecodeError):
            return False
        return True


@dataclass
class SubmissionResult:
    domain: str
    endpoint: str
    delivered: bool
    detail: str = ""


class ReportSubmitter:
    """Delivers reports to the recipients' TLSRPT ``rua`` endpoints."""

    def __init__(self, resolver: Resolver, *, mail_transport=None,
                 https_inboxes: Optional[Dict[str, ReportInbox]] = None):
        """``mail_transport`` is a :class:`repro.smtp.delivery.SendingMta`
        (or compatible) used for ``mailto:`` endpoints;
        ``https_inboxes`` maps https URLs to inboxes (the simulation's
        stand-in for POSTing to a collector service)."""
        self._resolver = resolver
        self._mail = mail_transport
        self._https_inboxes = https_inboxes or {}

    def submit_report(self, report: TlsReport) -> List[SubmissionResult]:
        domain = report.policies[0].policy_domain if report.policies else ""
        record = lookup_tlsrpt(self._resolver, domain) if domain else None
        if record is None:
            return [SubmissionResult(domain, "", False,
                                     "no TLSRPT record published")]
        results = []
        for endpoint in record.rua:
            results.append(self._submit_one(report, domain, endpoint))
        return results

    def _submit_one(self, report: TlsReport, domain: str,
                    endpoint: str) -> SubmissionResult:
        if endpoint.startswith("mailto:"):
            if self._mail is None:
                return SubmissionResult(domain, endpoint, False,
                                        "no mail transport configured")
            from repro.smtp.delivery import Message
            address = endpoint[len("mailto:"):]
            attempt = self._mail.send(Message(
                sender=f"tlsrpt@{report.organization_name}",
                recipient=address, body=report.to_json()))
            return SubmissionResult(domain, endpoint, attempt.delivered,
                                    attempt.status.value)
        if endpoint.startswith("https://"):
            inbox = self._https_inboxes.get(endpoint)
            if inbox is None:
                return SubmissionResult(domain, endpoint, False,
                                        "https endpoint unreachable")
            ok = inbox.submit(report.to_json())
            return SubmissionResult(domain, endpoint, ok,
                                    "accepted" if ok else "rejected")
        return SubmissionResult(domain, endpoint, False,
                                f"unsupported scheme in {endpoint!r}")


# ---------------------------------------------------------------------------
# Mapping sender events to result types
# ---------------------------------------------------------------------------

def result_type_for_fetch_stage(stage: str) -> ResultType:
    """Map a policy-fetch failure stage onto RFC 8460's vocabulary."""
    if stage == "policy-syntax":
        return ResultType.STS_POLICY_INVALID
    return ResultType.STS_POLICY_FETCH_ERROR


def result_type_for_tls_failure(failure_value: str) -> ResultType:
    mapping = {
        "hostname-mismatch": ResultType.CERTIFICATE_HOST_MISMATCH,
        "expired": ResultType.CERTIFICATE_EXPIRED,
        "not-yet-valid": ResultType.CERTIFICATE_EXPIRED,
        "self-signed": ResultType.CERTIFICATE_NOT_TRUSTED,
        "untrusted-root": ResultType.CERTIFICATE_NOT_TRUSTED,
        "no-tls-support": ResultType.STARTTLS_NOT_SUPPORTED,
    }
    return mapping.get(failure_value, ResultType.VALIDATION_FAILURE)
