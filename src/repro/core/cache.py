"""The sender-side policy cache (RFC 8461 §3.3, §4.2).

MTA-STS is trust-on-first-use: once a sender has fetched a policy over
an authenticated channel it keeps honouring it for up to ``max_age``
seconds, refreshing proactively when the DNS record's ``id`` changes.
The cache semantics drive two of the paper's findings:

* abrupt MTA-STS removal strands senders with a cached ``enforce``
  policy (§2.6's four-step removal procedure exists to prevent this);
* updating the TXT record before the policy file (the ordering 23.8%
  of surveyed operators use) opens a window where senders refetch and
  may pick up a stale or missing policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Optional, Tuple, TypeVar

from repro.clock import Clock, Duration, Instant
from repro.core.policy import Policy, parse_policy, render_policy
from repro.dns.name import canonical_host


def ttl_fresh(stored_at: Instant, ttl_seconds: int, now: Instant) -> bool:
    """RFC 8461-style freshness shared by every TTL cache in the repo.

    The lifetime is capped *at* ``ttl_seconds``: an entry stored at T
    is last honoured at ``T + ttl - 1`` and expired at exactly
    ``T + ttl`` (a ``<=`` here would grant a ttl+1'th second).
    """
    return now < stored_at + Duration(ttl_seconds)


@dataclass
class CachedPolicy:
    """One domain's cached policy plus bookkeeping."""

    domain: str
    policy: Policy
    record_id: str
    fetched_at: Instant

    def expires_at(self) -> Instant:
        return self.fetched_at + Duration(self.policy.max_age)

    def fresh_at(self, now: Instant) -> bool:
        return ttl_fresh(self.fetched_at, self.policy.max_age, now)

    def to_dict(self) -> dict:
        """A JSON-serialisable form (the policy rides as its RFC 8461
        wire text, so the round-trip reuses the strict parser)."""
        return {"domain": self.domain,
                "policy": render_policy(self.policy),
                "record_id": self.record_id,
                "fetched_at": self.fetched_at.epoch_seconds}

    @classmethod
    def from_dict(cls, data: dict) -> "CachedPolicy":
        return cls(domain=str(data["domain"]),
                   policy=parse_policy(str(data["policy"])),
                   record_id=str(data["record_id"]),
                   fetched_at=Instant(int(data["fetched_at"])))


class PolicyCache:
    """Per-sender MTA-STS policy cache."""

    def __init__(self, clock: Clock):
        self._clock = clock
        self._entries: Dict[str, CachedPolicy] = {}
        self.store_count = 0
        self.hit_count = 0

    def store(self, domain: str, policy: Policy, record_id: str) -> CachedPolicy:
        domain = canonical_host(domain)
        entry = CachedPolicy(domain, policy, record_id, self._clock.now())
        self._entries[domain] = entry
        self.store_count += 1
        return entry

    def get(self, domain: str) -> Optional[CachedPolicy]:
        """Return the cached entry if still fresh; expire it otherwise."""
        entry = self._fresh_entry(domain)
        if entry is not None:
            self.hit_count += 1
        return entry

    def _fresh_entry(self, domain: str) -> Optional[CachedPolicy]:
        """Freshness check shared by :meth:`get` and
        :meth:`needs_refresh`: evicts stale entries but does *not*
        count a hit, so refresh-daemon probes don't inflate the
        delivery engine's cache hit-rate metric."""
        domain = canonical_host(domain)
        entry = self._entries.get(domain)
        if entry is None:
            return None
        if not entry.fresh_at(self._clock.now()):
            del self._entries[domain]
            return None
        return entry

    def peek(self, domain: str) -> Optional[CachedPolicy]:
        """Like :meth:`get` without freshness eviction or hit counting."""
        return self._entries.get(canonical_host(domain))

    def needs_refresh(self, domain: str,
                      current_record_id: Optional[str]) -> bool:
        """Whether a fresh DNS record id obliges a policy refetch.

        RFC 8461: senders SHOULD refetch when the record's ``id``
        differs from the cached one.  A missing record does *not*
        invalidate a fresh cached policy (that is what makes abrupt
        removal dangerous).
        """
        entry = self._fresh_entry(domain)
        if entry is None:
            return True
        if current_record_id is None:
            return False
        return current_record_id != entry.record_id

    def evict(self, domain: str) -> None:
        self._entries.pop(canonical_host(domain), None)

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # -- persistence (RFC 8461 §10.2 recommends caches survive
    # restarts: a sender that forgets its cache loses TOFU protection
    # exactly when an attacker wants it to) ---------------------------

    def to_dict(self) -> dict:
        """Serialise every entry (and the counters) deterministically,
        sorted by domain."""
        return {
            "entries": [self._entries[domain].to_dict()
                        for domain in sorted(self._entries)],
            "store_count": self.store_count,
            "hit_count": self.hit_count,
        }

    @classmethod
    def from_dict(cls, data: dict, clock: Clock) -> "PolicyCache":
        """Rehydrate a cache persisted by :meth:`to_dict`.

        Entries keep their original ``fetched_at``, so policies that
        expired while the process was down are already stale to
        :meth:`get` — a restart never extends ``max_age``.
        """
        cache = cls(clock)
        for entry_data in data.get("entries", ()):
            entry = CachedPolicy.from_dict(entry_data)
            cache._entries[entry.domain] = entry
        cache.store_count = int(data.get("store_count", 0))
        cache.hit_count = int(data.get("hit_count", 0))
        return cache


# ---------------------------------------------------------------------------
# Generic TTL cache (the policy cache's semantics, for any value type)
# ---------------------------------------------------------------------------

V = TypeVar("V")


class TtlCache(Generic[V]):
    """A per-entry-TTL cache against the virtual clock.

    This is :class:`PolicyCache`'s expiry/eviction contract factored
    out for other cached artifacts (the ``repro serve`` verdict cache):
    strict :func:`ttl_fresh` freshness, stale entries evicted on read,
    ``store_count``/``hit_count`` bookkeeping, and a non-counting
    :meth:`fresh` probe so background freshness checks never inflate
    the hit-rate metric.  Keys are used as given — callers canonicalise
    (``canonical_host``) before reaching the cache.
    """

    def __init__(self, clock: Clock):
        self._clock = clock
        self._entries: Dict[str, Tuple[V, Instant, int]] = {}
        self.store_count = 0
        self.hit_count = 0
        self.eviction_count = 0

    def store(self, key: str, value: V, ttl_seconds: int) -> None:
        if ttl_seconds < 1:
            raise ValueError("ttl_seconds must be >= 1")
        self._entries[key] = (value, self._clock.now(), ttl_seconds)
        self.store_count += 1

    def get(self, key: str) -> Optional[V]:
        """The cached value if still fresh (counted); stale entries are
        evicted, exactly as :meth:`PolicyCache.get` evicts policies."""
        value = self._fresh_value(key)
        if value is not None:
            self.hit_count += 1
        return value

    def fresh(self, key: str) -> bool:
        """Non-counting freshness probe (still evicts stale entries)."""
        return self._fresh_value(key) is not None

    def _fresh_value(self, key: str) -> Optional[V]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        value, stored_at, ttl_seconds = entry
        if not ttl_fresh(stored_at, ttl_seconds, self._clock.now()):
            del self._entries[key]
            self.eviction_count += 1
            return None
        return value

    def peek(self, key: str) -> Optional[V]:
        """The raw entry value, fresh or not, without eviction."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def expires_at(self, key: str) -> Optional[Instant]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        _, stored_at, ttl_seconds = entry
        return stored_at + Duration(ttl_seconds)

    def evict(self, key: str) -> None:
        if self._entries.pop(key, None) is not None:
            self.eviction_count += 1

    def flush(self) -> None:
        self.eviction_count += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
