"""The ``_mta-sts`` TXT record (RFC 8461 §3.1).

The record signals MTA-STS support and carries a policy *id* that
changes whenever the policy file changes.  The paper's §4.3.2 error
classes map one-to-one onto :class:`~repro.errors.StsRecordError`:

* no ``id`` field (19.6% of broken records);
* an ``id`` containing characters outside ``[A-Za-z0-9]`` — e.g. a
  hyphen — (61%);
* a version prefix other than ``v=STSv1`` (15.7%);
* malformed extension fields (2 domains), such as using ``:`` as the
  key/value separator.

Validity rules implemented here, per the RFC:

1. the record must begin with ``v=STSv1``;
2. at most one TXT record starting with ``v=STSv1`` may exist —
   otherwise MTA-STS is treated as not deployed;
3. an ``id`` field must be present, 1–32 alphanumeric characters;
4. additional key/value pairs are permitted when they satisfy the
   RFC's ABNF (``sts-ext-name "=" sts-ext-value``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RecordError, StsRecordError

_ID_RE = re.compile(r"^[A-Za-z0-9]{1,32}$")
_EXT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,31}$")
# sts-ext-value per RFC 8461: printable US-ASCII minus '=', ';', and space.
_EXT_VALUE_RE = re.compile(r"^[\x21-\x3a\x3c\x3e-\x7e]+$")


@dataclass(frozen=True)
class StsRecord:
    """A parsed, valid MTA-STS TXT record."""

    version: str
    id: str
    extensions: Tuple[Tuple[str, str], ...] = ()

    def render(self) -> str:
        parts = [f"v={self.version}", f"id={self.id}"]
        parts.extend(f"{k}={v}" for k, v in self.extensions)
        return "; ".join(parts) + ";"


def parse_sts_record(text: str) -> StsRecord:
    """Parse one TXT string into an :class:`StsRecord`.

    Raises :class:`~repro.errors.RecordError` with the precise
    §4.3.2 failure class on any violation.
    """
    stripped = text.strip()
    if not stripped.startswith("v=STSv1"):
        raise RecordError(StsRecordError.BAD_VERSION,
                          f"record does not begin with v=STSv1: {text!r}")

    pairs: List[Tuple[str, str]] = []
    for chunk in stripped.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise RecordError(StsRecordError.INVALID_EXTENSION,
                              f"field without '=': {chunk!r}")
        key, _, value = chunk.partition("=")
        pairs.append((key.strip(), value.strip()))

    if not pairs or pairs[0] != ("v", "STSv1"):
        raise RecordError(StsRecordError.BAD_VERSION,
                          f"first field must be v=STSv1: {text!r}")

    record_id: Optional[str] = None
    extensions: List[Tuple[str, str]] = []
    for key, value in pairs[1:]:
        if key == "id":
            if record_id is not None:
                raise RecordError(StsRecordError.INVALID_EXTENSION,
                                  "duplicate id field")
            record_id = value
            continue
        if key == "v":
            raise RecordError(StsRecordError.INVALID_EXTENSION,
                              "duplicate v field")
        if not _EXT_NAME_RE.match(key) or not value or not _EXT_VALUE_RE.match(value):
            raise RecordError(StsRecordError.INVALID_EXTENSION,
                              f"invalid extension {key!r}={value!r}")
        extensions.append((key, value))

    if record_id is None:
        raise RecordError(StsRecordError.MISSING_ID, "no id field")
    if not _ID_RE.match(record_id):
        raise RecordError(StsRecordError.INVALID_ID,
                          f"id is not 1-32 alphanumerics: {record_id!r}")
    return StsRecord("STSv1", record_id, tuple(extensions))


@dataclass
class TxtRrsetEvaluation:
    """Outcome of evaluating a domain's whole ``_mta-sts`` TXT RRset."""

    record: Optional[StsRecord] = None
    error: Optional[StsRecordError] = None
    detail: str = ""
    sts_like_count: int = 0

    @property
    def valid(self) -> bool:
        return self.record is not None

    @property
    def signals_sts(self) -> bool:
        """Whether the domain *attempted* to deploy MTA-STS at all.

        The paper counts a domain as MTA-STS enabled when any TXT
        record at ``_mta-sts`` looks like an STS record, even if it is
        syntactically broken.
        """
        return self.sts_like_count > 0


def _looks_like_sts(text: str) -> bool:
    head = text.strip().lower()
    return head.startswith("v=sts")


def evaluate_txt_rrset(texts: Sequence[str]) -> TxtRrsetEvaluation:
    """Evaluate every TXT string found at ``_mta-sts.<domain>``.

    RFC 8461: senders MUST treat the domain as not having MTA-STS when
    more than one record begins with ``v=STSv1``.  Records that do not
    look STS-like (SPF leftovers, site-verification tokens) are ignored.
    """
    evaluation = TxtRrsetEvaluation()
    sts_like = [t for t in texts if _looks_like_sts(t)]
    evaluation.sts_like_count = len(sts_like)
    if not sts_like:
        evaluation.error = StsRecordError.MISSING
        evaluation.detail = "no STS-like TXT record"
        return evaluation

    strict = [t for t in sts_like if t.strip().startswith("v=STSv1")]
    if len(strict) > 1:
        evaluation.error = StsRecordError.MULTIPLE_RECORDS
        evaluation.detail = f"{len(strict)} records begin with v=STSv1"
        return evaluation

    candidate = strict[0] if strict else sts_like[0]
    try:
        evaluation.record = parse_sts_record(candidate)
    except RecordError as exc:
        evaluation.error = exc.kind
        evaluation.detail = str(exc)
    return evaluation
