"""DANE for SMTP (RFC 7672) — the paper's baseline mechanism.

DANE pins an MX host's certificate or public key in DNSSEC-signed TLSA
records at ``_25._tcp.<mx-host>``.  The validator here implements the
usage/selector/matching-type combinations that matter for SMTP
(DANE-EE(3) and DANE-TA(2) usages; Cert(0)/SPKI(1) selectors;
Full(0)/SHA-256(1) matching collapse to fingerprint equality in the
simulated PKI) plus the DNSSEC gate: without a secure chain, TLSA
records are unusable and the sender behaves opportunistically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dns.dnssec import ChainStatus, DnssecAuthority
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import RRType, TlsaRecord
from repro.dns.resolver import Resolver
from repro.errors import DnsError
from repro.pki.certificate import Certificate


@dataclass
class TlsaVerdict:
    """The result of DANE verification against one presented cert."""

    matched: bool
    usable_records: int = 0
    detail: str = ""


def _record_matches(record: TlsaRecord, cert: Certificate) -> bool:
    if record.matching_type not in (0, 1):
        return False
    if record.selector == 1:
        presented = cert.spki_fingerprint()
    else:
        presented = cert.cert_fingerprint()
    return record.association == presented


def verify_dane(records: List[TlsaRecord],
                certificate: Optional[Certificate]) -> TlsaVerdict:
    """Match TLSA records against the presented certificate.

    Only usages 2 (DANE-TA) and 3 (DANE-EE) are usable for SMTP per
    RFC 7672; usage-3 matches directly against the leaf, usage-2
    against the issuer in a real chain — approximated here by matching
    the leaf's issuer key fingerprint.
    """
    usable = [r for r in records if r.usage in (2, 3)]
    if not usable:
        return TlsaVerdict(False, 0, "no usable TLSA records (usage 2/3)")
    if certificate is None:
        return TlsaVerdict(False, len(usable), "no certificate presented")
    for record in usable:
        if record.usage == 3 and _record_matches(record, certificate):
            return TlsaVerdict(True, len(usable), "DANE-EE match")
        if record.usage == 2:
            issuer_fp = certificate.issuer_key.fingerprint()
            if record.association == issuer_fp:
                return TlsaVerdict(True, len(usable), "DANE-TA match")
    return TlsaVerdict(False, len(usable),
                       "no TLSA record matches the presented certificate")


class DaneValidator:
    """Resolves and verifies TLSA records through the DNSSEC gate."""

    def __init__(self, resolver: Resolver, dnssec: DnssecAuthority):
        self._resolver = resolver
        self._dnssec = dnssec

    def tlsa_records(self, mx_hostname: str | DnsName) -> List[TlsaRecord]:
        name_text = canonical_host(
            mx_hostname.text if isinstance(mx_hostname, DnsName)
            else mx_hostname)
        tlsa_name = DnsName.parse(f"_25._tcp.{name_text}")
        try:
            answer = self._resolver.resolve(tlsa_name, RRType.TLSA)
        except DnsError:
            return []
        return [r for r in answer.records if isinstance(r, TlsaRecord)]

    def chain_secure(self, mx_hostname: str | DnsName) -> bool:
        name = (DnsName.parse(mx_hostname) if isinstance(mx_hostname, str)
                else mx_hostname)
        return self._dnssec.validate(name) is ChainStatus.SECURE

    def domain_has_dane(self, domain: str | DnsName) -> bool:
        """Whether any MX of *domain* publishes usable, secure TLSA."""
        if isinstance(domain, str):
            domain = DnsName.parse(domain)
        answer = self._resolver.try_resolve(domain, RRType.MX)
        if answer is None:
            return False
        for record in answer.records:
            exchange = record.exchange  # type: ignore[attr-defined]
            if (self.chain_secure(exchange)
                    and self.tlsa_records(exchange)):
                return True
        return False

    def verify_mx(self, mx_hostname: str,
                  certificate: Optional[Certificate]) -> TlsaVerdict:
        if not self.chain_secure(mx_hostname):
            return TlsaVerdict(False, 0, "DNSSEC chain not secure")
        records = self.tlsa_records(mx_hostname)
        if not records:
            return TlsaVerdict(False, 0, "no TLSA records")
        return verify_dane(records, certificate)
