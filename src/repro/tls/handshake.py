"""TLS handshake simulation.

A server-side :class:`TlsEndpoint` owns certificates keyed by server
name; :func:`handshake` plays the client, sending SNI, receiving the
selected certificate, and optionally validating it against a trust
store.  The failure modes mirror what the paper's scanner observed:

* servers with no TLS support at all (``NO_TLS_SUPPORT``);
* servers that send a fatal alert when no certificate matches the SNI
  (``NO_CERTIFICATE`` — the DMARCReport "SSL alert" class in §4.3.3);
* certificates that fail PKIX validation (delegated to
  :mod:`repro.pki.validation`).

Scanners can also complete the handshake *without* validation to
retrieve the certificate for offline analysis, exactly as the
instrumented SMTP client in §4.1 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.clock import Instant
from repro.dns.name import DnsName, canonical_host
from repro.errors import TlsError, TlsFailure
from repro.pki.ca import TrustStore
from repro.pki.certificate import Certificate, hostname_matches
from repro.pki.validation import ValidationResult, validate_chain_cached


@dataclass
class TlsEndpoint:
    """Server-side TLS configuration.

    *certificates* maps exact or wildcard server-name patterns to the
    certificate presented for that SNI.  *default_certificate* is used
    when no pattern matches and *strict_sni* is off; with *strict_sni*
    on, an unmatched SNI produces a fatal alert (the
    ``unrecognized_name`` behaviour common on shared hosting).
    """

    enabled: bool = True
    certificates: Dict[str, Certificate] = field(default_factory=dict)
    default_certificate: Optional[Certificate] = None
    strict_sni: bool = False
    #: SNIs answered with a fatal alert regardless of other config —
    #: models shared hosting that never installed a certificate for one
    #: particular customer name.
    alert_snis: set = field(default_factory=set)

    def install(self, pattern: str, cert: Certificate, *,
                default: bool = False) -> None:
        pattern = canonical_host(pattern)
        self.certificates[pattern] = cert
        self.alert_snis.discard(pattern)
        if default or self.default_certificate is None:
            self.default_certificate = cert

    def uninstall(self, pattern: str) -> None:
        self.certificates.pop(canonical_host(pattern), None)

    def alert_for(self, sni: str) -> None:
        """Make this endpoint fatally alert for one SNI."""
        sni = canonical_host(sni)
        self.certificates.pop(sni, None)
        self.alert_snis.add(sni)

    def select_certificate(self, sni: str) -> Optional[Certificate]:
        sni = canonical_host(sni)
        if sni in self.alert_snis:
            return None
        exact = self.certificates.get(sni)
        if exact is not None:
            return exact
        for pattern, cert in sorted(self.certificates.items()):
            if hostname_matches(pattern, sni):
                return cert
        if self.strict_sni:
            return None
        return self.default_certificate


@dataclass
class TlsSession:
    """A completed handshake: the certificate the server presented."""

    server_name: str
    certificate: Certificate
    validation: Optional[ValidationResult] = None

    @property
    def validated(self) -> bool:
        return self.validation is not None and self.validation.valid


def handshake(endpoint: TlsEndpoint, server_name: str | DnsName,
              *, trust_store: Optional[TrustStore] = None,
              now: Optional[Instant] = None) -> TlsSession:
    """Client side of a TLS handshake with *endpoint*.

    With *trust_store* and *now* supplied the certificate is validated
    and a failed validation raises :class:`TlsError`; without them the
    handshake completes unauthenticated (certificate retrieval mode)
    unless the server cannot negotiate TLS at all.
    """
    name = server_name.text if isinstance(server_name, DnsName) else server_name
    name = canonical_host(name)

    if not endpoint.enabled:
        raise TlsError(TlsFailure.NO_TLS_SUPPORT,
                       f"{name}: server does not support TLS")
    certificate = endpoint.select_certificate(name)
    if certificate is None:
        raise TlsError(TlsFailure.NO_CERTIFICATE,
                       f"{name}: fatal alert, no certificate for SNI")

    validation: Optional[ValidationResult] = None
    if trust_store is not None:
        if now is None:
            raise ValueError("validation requires the current instant")
        validation = validate_chain_cached(certificate, name, trust_store, now)
        if not validation.valid:
            assert validation.failure is not None
            raise TlsError(validation.failure,
                           f"{name}: {validation.detail}")
    return TlsSession(name, certificate, validation)
