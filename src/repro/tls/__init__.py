"""Simulated TLS handshakes."""

from repro.tls.handshake import TlsEndpoint, TlsSession, handshake

__all__ = ["TlsEndpoint", "TlsSession", "handshake"]
