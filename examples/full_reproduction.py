"""The whole paper in one run (small scale).

Executes every stage of the reproduction end-to-end — the longitudinal
campaign (Figures 4-10 and Table 2), the adoption series (Figures 2
and 12, Table 1), the Tranco join (Figure 3), the sender-side testbed
(§6), the survey (§7 and Figure 11), and the disclosure campaign
(§4.7) — and prints an EXPERIMENTS.md-style paper-vs-measured summary.

Run:  python examples/full_reproduction.py [scale]
The default scale (0.01) finishes in about a minute.
"""

import sys
import time

from repro.analysis.series import run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.ecosystem.tranco import TrancoRanking
from repro.ecosystem.world import World
from repro.measurement.notify import DisclosureCampaign
from repro.measurement.senderside import (
    SenderSideTestbed, synthesize_sender_population,
)
from repro.measurement.taxonomy import categorize
from repro.survey.analysis import analyze
from repro.survey.synthesize import synthesize_respondents


def row(label: str, paper, measured) -> None:
    print(f"  {label:<52} paper: {paper!s:<18} measured: {measured}")


def main(scale: float = 0.01) -> None:
    started = time.time()
    print(f"=== building and scanning the ecosystem (scale={scale}) ===")
    timeline = EcosystemTimeline(TimelineConfig(PopulationConfig(scale=scale)))
    campaign = run_campaign(timeline)

    print("\n--- Table 1 / Figure 2: deployment ---")
    for entry in timeline.table1_rows():
        row(f".{entry['tld']} MTA-STS share",
            {"com": "0.07%", "net": "0.09%", "org": "0.13%",
             "se": "0.08%"}[entry["tld"]],
            f"{entry['sts_percent']:.3f}% ({entry['sts_domains']} domains)")
    series = timeline.adoption_series("com")
    row(".com growth over the window", "3-4x",
        f"{series[-1][1] / max(1, series[0][1]):.1f}x")

    print("\n--- Figure 3: popularity ---")
    ranking = TrancoRanking(list_size=200_000)
    row("top-10k bin adoption", "1.2%", f"{ranking.top_bin_percent():.2f}%")
    row("bottom-10k bin adoption", "0.4%",
        f"{ranking.bottom_bin_percent():.2f}%")

    print("\n--- Figures 4-8: misconfigurations (final snapshot) ---")
    summary = campaign.latest_summary()
    row("misconfigured share", "29.6%",
        f"{summary.misconfigured_percent():.1f}%")
    self_final = campaign.figure5_series("self-managed")[-1]
    third_final = campaign.figure5_series("third-party")[-1]
    row("self-managed policy errors", "37.8%", f"{self_final['any']:.1f}%")
    row("third-party policy errors", "4.9%", f"{third_final['any']:.1f}%")
    mx_self = campaign.figure6_series("self-managed")[-1]
    mx_third = campaign.figure6_series("third-party")[-1]
    row("self-managed invalid MX certs", "4.4%",
        f"{mx_self['invalid_pct']:.1f}%")
    row("third-party invalid MX certs", "1.0%",
        f"{mx_third['invalid_pct']:.1f}%")
    fig8 = campaign.figure8_series()[-1]
    row("enforce-mode mismatched (count, scaled)",
        round(406 * scale), fig8["enforce"])

    print("\n--- Figure 9/10: inconsistency dynamics ---")
    fig9 = campaign.figure9_series()[-1]
    row("mismatches explained by history", "63%", f"{fig9['percent']:.0f}%")
    fig10 = campaign.figure10_series()[-1]
    row("same-provider inconsistent domains", 1, fig10["same_bad"])
    row("split-provider inconsistent domains (scaled)",
        round(640 * scale), fig10["diff_bad"])

    print("\n--- Table 2: delegation ---")
    for entry in campaign.table2_census(top=4):
        row(f"top provider {entry['provider_sld']}", "see Table 2",
            f"{entry['domains']} customers")

    print("\n--- §6: sender-side validation ---")
    testbed = SenderSideTestbed(World())
    profiles = synthesize_sender_population(max(200, int(2394 * scale * 10)))
    report = testbed.run_campaign(profiles)
    total = report["senders"]
    row("senders delivering over TLS", "94.6%",
        f"{100 * report['tls'] / total:.1f}%")
    row("senders validating MTA-STS", "19.6%",
        f"{100 * report['mta_sts_validators'] / total:.1f}%")
    row("senders validating DANE", "29.8%",
        f"{100 * report['dane_validators'] / total:.1f}%")

    print("\n--- §7: survey ---")
    findings = analyze(synthesize_respondents())
    row("aware of MTA-STS", "94.7%",
        f"{findings.heard_of_mta_sts[2]:.1f}%")
    row("cite operational complexity", "48.8%",
        f"{findings.bottleneck_complexity[2]:.1f}%")
    row("non-deployers using DANE instead", "45.4%",
        f"{findings.not_deployed_use_dane[2]:.1f}%")

    print("\n--- §4.7: disclosure campaign ---")
    final_month = campaign.store.latest_month()
    misconfigured = [s for s in campaign.store.latest() if categorize(s)]
    materialized = timeline.materialize(final_month)
    disclosure = DisclosureCampaign(materialized.world,
                                    extra_bounce_rate=0.22)
    notify_report = disclosure.run(misconfigured)
    row("notified misconfigured domains (scaled)",
        round(20_144 * scale), notify_report.notified)
    row("bounce rate", ">24.8%", f"{100 * notify_report.bounce_rate:.1f}%")
    row("remediation rate", "10%",
        f"{100 * notify_report.remediation_rate:.1f}%")

    print("\n--- §4.6: key takeaways ---")
    from repro.analysis.takeaways import compute_takeaways
    for takeaway in compute_takeaways(campaign):
        print(takeaway.render())

    print(f"\ndone in {time.time() - started:.1f}s")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
