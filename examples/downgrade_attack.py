"""Security demonstration: the attacks MTA-STS exists to stop (§1).

Installs an on-path STARTTLS-stripping attacker and a DNS/MX spoofer
in front of a victim domain, then shows the outcome for each sender
class — including the trust-on-first-use weakness the paper notes in
footnote 2 (a first-contact sender whose policy fetch is also blocked
gets downgraded despite the victim "having" MTA-STS).

Run:  python examples/downgrade_attack.py
"""

from repro.attacks import DnsSpoofer, PolicyHostBlocker, StarttlsStripper
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.sender import MtaStsSender
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.world import World
from repro.smtp.delivery import Message, SendingMta


def build_world():
    world = World()
    victim = deploy_domain(world, DomainSpec(
        domain="victim.com",
        policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                      max_age=7 * 86400,
                      mx_patterns=("mail.victim.com",))))
    fetcher = PolicyFetcher(world.resolver, world.https_client)
    return world, victim, fetcher


def outcome(attempt, attacker=None):
    status = attempt.status.value
    if attacker is not None and attacker.plaintext_captured:
        status += "  <- INTERCEPTED IN PLAINTEXT"
    return status


def scenario_stripping():
    print("== STARTTLS stripping ==")
    world, victim, fetcher = build_world()
    attacker = StarttlsStripper(world.network)
    attacker.attack(victim.mx_hosts[0])

    naive = SendingMta("naive.net", world.network, world.resolver,
                       world.trust_store, world.clock)
    print("  opportunistic sender  :",
          outcome(naive.send(Message("a@naive.net", "b@victim.com")),
                  attacker))

    attacker.intercepted_messages.clear()
    sts = MtaStsSender("secure.net", world.network, world.resolver,
                       world.trust_store, world.clock, fetcher)
    print("  MTA-STS sender        :",
          outcome(sts.send(Message("a@secure.net", "b@victim.com")),
                  attacker))
    print()


def scenario_first_contact():
    print("== first contact under full attack (footnote 2's TOFU gap) ==")
    world, victim, fetcher = build_world()
    primed = MtaStsSender("veteran.net", world.network, world.resolver,
                          world.trust_store, world.clock, fetcher)
    primed.send(Message("a@veteran.net", "b@victim.com"))   # cache warm

    stripper = StarttlsStripper(world.network)
    stripper.attack(victim.mx_hosts[0])
    blocker = PolicyHostBlocker(world.resolver)
    blocker.block_policy_host("victim.com")
    world.resolver.flush_cache()

    fresh = MtaStsSender("newcomer.net", world.network, world.resolver,
                         world.trust_store, world.clock, fetcher)
    print("  first-contact sender  :",
          outcome(fresh.send(Message("a@newcomer.net", "b@victim.com")),
                  stripper))
    stripper.intercepted_messages.clear()
    print("  sender w/ cached policy:",
          outcome(primed.send(Message("a@veteran.net", "b@victim.com")),
                  stripper))
    print()


def scenario_mx_spoofing():
    print("== DNS/MX spoofing ==")
    world, victim, fetcher = build_world()
    # The attacker's own MX with a perfectly valid certificate — for
    # the attacker's name, which matches none of the victim's patterns.
    from repro.dns.name import DnsName
    from repro.dns.records import ARecord
    from repro.dns.zone import Zone
    from repro.smtp.server import MxHost
    from repro.tls.handshake import TlsEndpoint
    ip = world.fresh_ip("mx")
    tls = TlsEndpoint()
    tls.install("mx.evil.net", world.issue_cert(["mx.evil.net"]),
                default=True)
    evil = MxHost("mx.evil.net", ip, world.network, tls=tls)
    zone = Zone(apex=DnsName.parse("evil.net"))
    zone.add(ARecord(DnsName.parse("mx.evil.net"), 60, ip))
    world.host_zone(zone)

    spoofer = DnsSpoofer(world.resolver)
    spoofer.spoof_mx("victim.com", "mx.evil.net")

    naive = SendingMta("naive.net", world.network, world.resolver,
                       world.trust_store, world.clock)
    attempt = naive.send(Message("a@naive.net", "b@victim.com"))
    print(f"  opportunistic sender  : {attempt.status.value}"
          + ("  <- DELIVERED TO THE ATTACKER" if evil.mailbox else ""))

    sts = MtaStsSender("secure.net", world.network, world.resolver,
                       world.trust_store, world.clock, fetcher)
    attempt = sts.send(Message("a@secure.net", "b@victim.com"))
    print(f"  MTA-STS sender        : {attempt.status.value}"
          + ("  (attacker mailbox stayed empty)"
             if len(evil.mailbox) == 1 else ""))


if __name__ == "__main__":
    scenario_stripping()
    scenario_first_contact()
    scenario_mx_spoofing()
