"""Policy delegation and provider opt-out behaviour (paper §5, Table 2).

Onboards a customer with each of the paper's eight policy hosting
providers, opts them all out, and probes what a sender now experiences
— reproducing the paper's finding that none of the providers follow
the RFC 8461 deprovisioning best practice.

Run:  python examples/delegation_providers.py
"""

from repro.analysis.report import render_table
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.providers import table2_providers
from repro.ecosystem.world import World
from repro.measurement.delegation import probe_opted_out


def main() -> None:
    world = World()
    fetcher = PolicyFetcher(world.resolver, world.https_client)

    rows = []
    for provider in table2_providers():
        domain = f"customer-of-{provider.name.lower()}.com"
        deploy_domain(world, DomainSpec(
            domain=domain, policy_provider=provider,
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400, mx_patterns=(f"mail.{domain}",))))

        active = fetcher.fetch_policy(domain)
        assert active.fully_valid, f"{provider.name} onboarding failed"

        provider.customer_opts_out(world, domain)
        world.resolver.flush_cache()
        observation = probe_opted_out(world, provider, domain)
        rows.append({
            "provider": provider.name,
            "cname": provider.canonical_host_for(domain),
            "optout": provider.opt_out.value,
            "resolves": observation.policy_resolves,
            "cert_ok": observation.cert_valid,
            "effective_mode": observation.effective_mode,
        })

    print(render_table(rows, ["provider", "optout", "resolves", "cert_ok",
                              "effective_mode"],
                       title="Opted-out customers, as a sender sees them "
                             "(Table 2)"))
    print("CNAME patterns:")
    for row in rows:
        print(f"  {row['provider']:<14} {row['cname']}")

    hazardous = [r for r in rows if r["effective_mode"] == "enforce"]
    print()
    print(f"{len(hazardous)} provider(s) leave a stale ENFORCE policy "
          f"serving after opt-out — the delivery-failure hazard the "
          f"paper highlights:")
    for row in hazardous:
        print(f"  - {row['provider']}")


if __name__ == "__main__":
    main()
