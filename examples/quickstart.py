"""Quickstart: deploy, validate, and send to an MTA-STS domain.

Builds a tiny simulated internet, stands up ``example.com`` with a
full MTA-STS stack (DNS record, HTTPS policy host, STARTTLS-capable
MX), assesses its health the way the paper's scanner does, and then
delivers a message with an RFC 8461-compliant sender — including what
happens when the domain breaks.

Run:  python examples/quickstart.py
"""

from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.sender import MtaStsSender
from repro.core.validator import MtaStsValidator
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.ecosystem.world import World
from repro.smtp.delivery import Message


def main() -> None:
    # 1. A simulated internet: TLD registries, a trusted CA, clients.
    world = World()

    # 2. Deploy example.com: self-managed MX + policy host, enforce mode.
    policy = Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                    max_age=7 * 86400, mx_patterns=("mail.example.com",))
    deployed = deploy_domain(world, DomainSpec(domain="example.com",
                                               policy=policy))
    print("deployed example.com")
    print("  MX records :", deployed.mx_record_hostnames())
    print("  policy     :", deployed.policy_text.strip().splitlines())

    # 3. Assess it like the paper's scanner: record, policy, MX certs.
    fetcher = PolicyFetcher(world.resolver, world.https_client)
    validator = MtaStsValidator(world.resolver, fetcher, world.smtp_probe)
    assessment = validator.assess("example.com")
    print("assessment")
    print("  record valid        :", assessment.record_valid)
    print("  policy retrievable  :", assessment.policy_retrieval_ok)
    print("  MX certificates OK  :", assessment.mx_certs_ok)
    print("  patterns consistent :", assessment.consistent)
    print("  misconfigured       :", assessment.misconfigured)

    # 4. Send a message with a compliant sender (fetch, cache, enforce).
    sender = MtaStsSender("relay.sender.net", world.network, world.resolver,
                          world.trust_store, world.clock, fetcher)
    attempt = sender.send(Message("alice@sender.net", "bob@example.com"))
    print("delivery:", attempt.status.value,
          "| mechanism:", sender.last_mechanism)

    # 5. Break the MX certificate; enforce mode now refuses delivery.
    apply_fault(world, deployed, Fault.MX_CERT_SELF_SIGNED, mx_index=None)
    attempt = sender.send(Message("alice@sender.net", "bob@example.com"))
    print("after breaking the MX certificate:", attempt.status.value)
    for event in sender.events[-2:]:
        print("  sender event:", event.mechanism, event.action, event.detail)

    # 6. The scanner sees the same thing.
    assessment = validator.assess("example.com")
    print("re-assessment: categories =",
          [c.value for c in assessment.misconfig_categories()],
          "| delivery failure expected =",
          assessment.delivery_failure_expected)


if __name__ == "__main__":
    main()
