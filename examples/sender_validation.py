"""Sender-side validation measurement (paper §6).

Stands up the receiving-side testbed (the email-security-scans.org
analogue): trap domains whose MTA-STS and DANE configurations are
deliberately contradictory, then runs a few hand-built senders plus a
synthetic population calibrated to §6.2 and prints the aggregate
validation census.

Run:  python examples/sender_validation.py [sender_count]
"""

import sys

from repro.ecosystem.world import World
from repro.measurement.senderside import (
    SenderProfile, SenderSideTestbed, synthesize_sender_population,
)


def demo_individual_senders(testbed: SenderSideTestbed) -> None:
    profiles = {
        "opportunistic (93.2% of senders)": SenderProfile("opp.example"),
        "MTA-STS validator": SenderProfile("sts.example",
                                           validates_mta_sts=True),
        "DANE validator": SenderProfile("dane.example", validates_dane=True),
        "both, correct precedence": SenderProfile(
            "both.example", validates_mta_sts=True, validates_dane=True),
        "both, milter bug (prefers MTA-STS)": SenderProfile(
            "bug.example", validates_mta_sts=True, validates_dane=True,
            prefers_sts_over_dane=True),
        "always requires PKIX (1.3%)": SenderProfile("pkix.example",
                                                     require_pkix=True),
    }
    print("probe outcomes per sender type")
    print(f"  {'sender type':<36} {'sts-trap':<9} {'dane-trap':<10} "
          f"{'pkix-trap':<10} conflict")
    for label, profile in profiles.items():
        outcome = testbed.run_probe(profile)
        conflict = outcome.delivered_to_conflict_probe_mechanism or "refused"
        print(f"  {label:<36} "
              f"{'deliver' if outcome.delivered_to_sts_trap else 'refuse':<9} "
              f"{'deliver' if outcome.delivered_to_dane_trap else 'refuse':<10} "
              f"{'deliver' if outcome.delivered_to_pkix_trap else 'refuse':<10} "
              f"{conflict}")
    print()


def main(count: int = 600) -> None:
    world = World()
    testbed = SenderSideTestbed(world)
    demo_individual_senders(testbed)

    print(f"running the calibrated campaign with {count} senders ...")
    profiles = synthesize_sender_population(count)
    report = testbed.run_campaign(profiles)
    total = report["senders"]
    print()
    print("campaign results            measured         paper (§6.2)")
    print(f"  senders                   {total:>6}          2,394")
    print(f"  deliver over TLS          {report['tls']:>6} "
          f"({100 * report['tls'] / total:4.1f}%)   2,264 (94.6%)")
    print(f"  validate MTA-STS          {report['mta_sts_validators']:>6} "
          f"({100 * report['mta_sts_validators'] / total:4.1f}%)     469 (19.6%)")
    print(f"  validate DANE             {report['dane_validators']:>6} "
          f"({100 * report['dane_validators'] / total:4.1f}%)     714 (29.8%)")
    print(f"  validate both             {report['both_validators']:>6}"
          f"            203")
    print(f"  prefer MTA-STS over DANE  "
          f"{report['prefer_sts_over_dane']:>6}             62")
    print(f"  always require PKIX       {report['pkix_always']:>6}"
          f"             31")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
