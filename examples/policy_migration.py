"""Lifecycle walkthrough: updating and removing MTA-STS safely.

Demonstrates the operational hazards the paper documents:

* §7.2: 23.8% of surveyed operators update the TXT record before the
  policy file — this script shows the transient failure window that
  ordering opens;
* §2.6: abrupt removal strands senders holding cached enforce
  policies, while the RFC 8461 four-step sequence drains them safely.

Run:  python examples/policy_migration.py
"""

from repro.clock import DAY, Duration
from repro.core.fetch import PolicyFetcher
from repro.core.lifecycle import check_removal_sequence, plan_removal
from repro.core.policy import Policy, PolicyMode, render_policy
from repro.core.sender import MtaStsSender
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.ecosystem.world import World
from repro.smtp.delivery import Message


def build(max_age=7 * 86400):
    world = World()
    deployed = deploy_domain(world, DomainSpec(
        domain="victim.com",
        policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                      max_age=max_age, mx_patterns=("mail.victim.com",))))
    fetcher = PolicyFetcher(world.resolver, world.https_client)
    sender = MtaStsSender("relay.big-mailer.net", world.network,
                          world.resolver, world.trust_store, world.clock,
                          fetcher)
    status = sender.send(Message("a@x.org", "b@victim.com")).status
    print(f"  primed sender cache (delivery: {status.value})")
    return world, deployed, sender


def scenario_abrupt_removal():
    print("scenario 1: ABRUPT removal, then provider migration")
    world, deployed, sender = build()
    deployed.remove_record()
    deployed.set_policy_text("")
    apply_fault(world, deployed, Fault.OUTDATED_POLICY)  # MX migrates
    world.resolver.flush_cache()
    status = sender.send(Message("a@x.org", "b@victim.com")).status
    print(f"  delivery after abrupt removal + migration: {status.value}")
    print("  -> the cached enforce policy still names the old MX\n")


def scenario_rfc_removal():
    print("scenario 2: RFC 8461 removal sequence")
    world, deployed, sender = build()
    previous = Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                      max_age=7 * 86400, mx_patterns=("mail.victim.com",))
    plan = plan_removal("victim.com", previous)
    for step in plan.steps:
        print(f"  step: {step.kind.value:<18} {step.note}")
    lint = check_removal_sequence(plan.steps, previous)
    print(f"  linter verdict: compliant={lint.compliant}")

    none_policy = plan.steps[0].policy
    deployed.set_policy_text(render_policy(none_policy))
    deployed.set_record("v=STSv1; id=removal1;")
    world.resolver.flush_cache()
    sender.send(Message("a@x.org", "b@victim.com"))   # refetch: mode=none
    world.clock.advance(Duration(8 * 86400))
    deployed.remove_record()
    deployed.set_policy_text("")
    apply_fault(world, deployed, Fault.OUTDATED_POLICY)
    world.resolver.flush_cache()
    status = sender.send(Message("a@x.org", "b@victim.com")).status
    print(f"  delivery after graceful removal + migration: {status.value}\n")


def scenario_txt_first_update():
    print("scenario 3: updating the TXT record before the policy file")
    world, deployed, sender = build()
    # The operator bumps the id first; the policy body still lists the
    # about-to-be-retired MX.
    deployed.set_record("v=STSv1; id=migration1;")
    world.resolver.flush_cache()
    sender.send(Message("a@x.org", "b@victim.com"))   # caches stale policy
    apply_fault(world, deployed, Fault.OUTDATED_POLICY)
    world.resolver.flush_cache()
    status = sender.send(Message("a@x.org", "b@victim.com")).status
    print(f"  delivery inside the stale window: {status.value}")
    # Eventually the operator fixes the policy body and bumps again.
    fixed = Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                   max_age=7 * 86400, mx_patterns=("mx.victim-mail.net",))
    deployed.set_policy_text(render_policy(fixed))
    deployed.set_record("v=STSv1; id=migration2;")
    world.resolver.flush_cache()
    status = sender.send(Message("a@x.org", "b@victim.com")).status
    print(f"  delivery after the fix: {status.value}\n")


if __name__ == "__main__":
    scenario_abrupt_removal()
    scenario_rfc_removal()
    scenario_txt_first_update()
