"""Ecosystem audit: scan a synthetic TLD population and reproduce the
paper's misconfiguration census for one snapshot.

Generates a scaled-down version of the paper's final snapshot
(2024-09-29), runs the full scanning pipeline (DNS, HTTPS policy
fetch, STARTTLS probes), classifies managing entities with the §4.3.1
heuristics, and prints the Figure 4/5/6 style breakdowns.

Run:  python examples/misconfiguration_audit.py [scale]
"""

import sys

from repro.analysis.report import render_table
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.classify import EntityClassifier
from repro.measurement.inconsistency import mismatch_census
from repro.measurement.scanner import Scanner
from repro.measurement.taxonomy import snapshot_summary


def main(scale: float = 0.01) -> None:
    print(f"building the ecosystem at scale {scale} ...")
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=scale)))
    final_month = len(timeline.scan_instants) - 1
    materialized = timeline.materialize(final_month)
    print(f"materialized {len(materialized.deployed)} MTA-STS domains "
          f"as of {materialized.instant.date_string()}")

    print("scanning (DNS, HTTPS policy, STARTTLS) ...")
    scanner = Scanner(materialized.world)
    store = scanner.scan_all(materialized.deployed.keys(), final_month)
    snapshots = store.month(final_month)

    verdicts = EntityClassifier(snapshots).classify_all()
    summary = snapshot_summary(snapshots, verdicts)

    print()
    print(f"domains with MTA-STS records : {summary.total_sts}")
    print(f"misconfigured                : {summary.misconfigured} "
          f"({summary.misconfigured_percent():.1f}%; paper: 29.6%)")
    print(f"expected delivery failures   : {summary.delivery_failures}")
    print()
    print(render_table(
        [{"category": name, "domains": count,
          "percent": 100.0 * count / summary.total_sts}
         for name, count in summary.category_counts.most_common()],
        ["category", "domains", "percent"],
        title="Misconfiguration categories (Figure 4)"))

    rows = []
    for entity in ("self-managed", "third-party", "unclassified"):
        total = summary.policy_entity_totals[entity]
        errors = summary.policy_errors_by_entity[entity]
        rows.append({"entity": entity, "domains": total,
                     "errors": sum(errors.values()),
                     "error_pct": (100.0 * sum(errors.values()) / total
                                   if total else 0.0),
                     "top_stage": (errors.most_common(1)[0][0]
                                   if errors else "-")})
    print(render_table(rows, ["entity", "domains", "errors", "error_pct",
                              "top_stage"],
                       title="Policy-server errors by managing entity "
                             "(Figure 5; paper: self 37.8%, third 4.9%)"))

    census = mismatch_census(snapshots)
    print(render_table(
        [{"class": cls.value, "domains": count}
         for cls, count in census["counts"].items()],
        ["class", "domains"],
        title="Inconsistency classes (Figure 8)"))
    print(f"enforce-mode mismatched domains: {census['enforce']}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
